"""Vectorized frontier kernels vs the scalar traversal reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.frontier import (
    UNREACHED,
    bfs_bitparallel_csr,
    bfs_distances_csr,
    edge_positions,
)
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_avoiding_edge,
)


def _random_graph(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    m = int(rng.integers(1, min(n * (n - 1) // 2, 3 * n) + 1))
    return erdos_renyi_gnm(n, m, seed=seed)


@st.composite
def graphs_with_edges(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    g = _random_graph(seed)
    if g.num_edges == 0:
        g.add_edge(0, 1)
    return g


class TestSingleSource:
    @settings(max_examples=60, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_plain_matches_scalar(self, g, pick):
        csr = CSRGraph.from_graph(g)
        source = pick % g.num_vertices
        got = bfs_distances_csr(csr.indptr, csr.indices, source)
        assert got.tolist() == bfs_distances(g, source)

    @settings(max_examples=60, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_edge_avoid_matches_scalar(self, g, pick):
        csr = CSRGraph.from_graph(g)
        edges = sorted(g.edges())
        u, v = edges[pick % len(edges)]
        source = pick % g.num_vertices
        pair = edge_positions(csr.indptr, csr.indices, u, v)
        got = bfs_distances_csr(
            csr.indptr, csr.indices, source, avoid_positions=pair
        )
        assert got.tolist() == bfs_distances_avoiding_edge(g, source, (u, v))

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_allowed_mask_restricts_reachability(self, g, pick):
        csr = CSRGraph.from_graph(g)
        n = g.num_vertices
        source = pick % n
        rng = np.random.default_rng(pick)
        allowed = rng.random(n) < 0.6
        got = bfs_distances_csr(
            csr.indptr, csr.indices, source, allowed=allowed
        )
        # Reference: BFS on the subgraph induced by allowed ∪ {source}.
        adj = g.adjacency()
        ref = [UNREACHED] * n
        ref[source] = 0
        frontier = [source]
        while frontier:
            nxt = []
            for x in frontier:
                for w in adj[x]:
                    if ref[w] == UNREACHED and allowed[w]:
                        ref[w] = ref[x] + 1
                        nxt.append(w)
            frontier = nxt
        assert got.tolist() == ref

    def test_source_exempt_from_allowed_mask(self):
        g = erdos_renyi_gnm(6, 8, seed=1)
        csr = CSRGraph.from_graph(g)
        allowed = np.zeros(6, dtype=bool)
        got = bfs_distances_csr(csr.indptr, csr.indices, 2, allowed=allowed)
        assert got[2] == 0
        assert all(d == UNREACHED for i, d in enumerate(got) if i != 2)

    def test_out_buffer_reused(self):
        g = erdos_renyi_gnm(10, 15, seed=3)
        csr = CSRGraph.from_graph(g)
        buf = np.empty(10, dtype=np.int32)
        got = bfs_distances_csr(csr.indptr, csr.indices, 0, out=buf)
        assert got is buf
        assert got.tolist() == bfs_distances(g, 0)


class TestEdgePositions:
    def test_positions_point_at_each_direction(self):
        g = erdos_renyi_gnm(12, 20, seed=2)
        csr = CSRGraph.from_graph(g)
        for u, v in list(g.edges())[:10]:
            pu, pv = edge_positions(csr.indptr, csr.indices, u, v)
            assert csr.indices[pu] == v
            assert csr.indptr[u] <= pu < csr.indptr[u + 1]
            assert csr.indices[pv] == u
            assert csr.indptr[v] <= pv < csr.indptr[v + 1]

    def test_missing_edge_raises(self):
        g = erdos_renyi_gnm(8, 8, seed=4)
        csr = CSRGraph.from_graph(g)
        u, v = next(iter(g.edges()))
        missing = next(
            (a, b)
            for a in range(8)
            for b in range(8)
            if a != b and not g.has_edge(a, b)
        )
        with pytest.raises(GraphError):
            edge_positions(csr.indptr, csr.indices, *missing)


class TestBitParallel:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_shared_avoid_matches_scalar_rows(self, g, pick):
        csr = CSRGraph.from_graph(g)
        n = g.num_vertices
        rng = np.random.default_rng(pick)
        k = int(rng.integers(1, min(n, 70) + 1))
        roots = [int(r) for r in rng.integers(0, n, size=k)]
        edges = sorted(g.edges())
        u, v = edges[pick % len(edges)]
        pair = edge_positions(csr.indptr, csr.indices, u, v)
        dist, settled = bfs_bitparallel_csr(
            csr.indptr, csr.indices, roots, avoid_positions=pair
        )
        assert dist.shape == (k, n)
        assert settled >= k
        for i, r in enumerate(roots):
            assert dist[i].tolist() == bfs_distances_avoiding_edge(
                g, r, (u, v)
            )

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_per_lane_avoid_matches_scalar_rows(self, g, pick):
        csr = CSRGraph.from_graph(g)
        n = g.num_vertices
        rng = np.random.default_rng(pick)
        edges = sorted(g.edges())
        k = int(rng.integers(1, 9))
        roots = [int(r) for r in rng.integers(0, n, size=k)]
        lane_edges = [edges[int(e)] for e in rng.integers(0, len(edges), k)]
        pairs = [
            edge_positions(csr.indptr, csr.indices, u, v)
            for u, v in lane_edges
        ]
        dist, _ = bfs_bitparallel_csr(
            csr.indptr, csr.indices, roots, avoid_positions=pairs
        )
        for i, r in enumerate(roots):
            assert dist[i].tolist() == bfs_distances_avoiding_edge(
                g, r, lane_edges[i]
            )

    @settings(max_examples=30, deadline=None)
    @given(graphs_with_edges(), st.integers(min_value=0, max_value=10_000))
    def test_needed_early_exit_exact_on_needed_pairs(self, g, pick):
        csr = CSRGraph.from_graph(g)
        n = g.num_vertices
        rng = np.random.default_rng(pick)
        k = int(rng.integers(1, min(n, 64) + 1))
        roots = [int(r) for r in rng.integers(0, n, size=k)]
        needed = np.zeros(n, dtype=np.uint64)
        wanted = []
        for _ in range(int(rng.integers(1, 3 * n))):
            t = int(rng.integers(0, n))
            lane = int(rng.integers(0, k))
            needed[t] |= np.uint64(1) << np.uint64(lane)
            wanted.append((lane, t))
        dist, _ = bfs_bitparallel_csr(
            csr.indptr, csr.indices, roots, needed=needed
        )
        full = {r: bfs_distances(g, r) for r in set(roots)}
        for lane, t in wanted:
            assert dist[lane][t] == full[roots[lane]][t]

    def test_more_than_64_roots_rejected(self):
        g = erdos_renyi_gnm(80, 120, seed=5)
        csr = CSRGraph.from_graph(g)
        with pytest.raises(ValueError):
            bfs_bitparallel_csr(csr.indptr, csr.indices, list(range(65)))

    def test_per_lane_avoid_length_mismatch_rejected(self):
        g = erdos_renyi_gnm(10, 15, seed=6)
        csr = CSRGraph.from_graph(g)
        edges = sorted(g.edges())
        pair = edge_positions(csr.indptr, csr.indices, *edges[0])
        with pytest.raises(ValueError):
            bfs_bitparallel_csr(
                csr.indptr, csr.indices, [0, 1, 2], avoid_positions=[pair]
            )
