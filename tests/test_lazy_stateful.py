"""Stateful model test: LazySIEFIndex vs a plain-graph BFS model.

Hypothesis drives random interleavings of the three operations a live
deployment performs — failure queries, edge insertions, permanent
removals — and after every step the index must agree with a from-scratch
BFS on the model graph.  This is the strongest guard against state-
invalidation bugs (stale supplements, stale labelings) the library has.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core.lazy import LazySIEFIndex
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distance_between
from repro.labeling.query import INF


class LazyIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.lazy = None
        self.model = None  # independent Graph copy, mutated in lockstep

    @initialize(seed=st.integers(0, 50))
    def setup(self, seed):
        graph = generators.erdos_renyi_gnm(12, 22, seed=seed)
        self.model = graph.copy()
        self.lazy = LazySIEFIndex(graph)

    def _an_edge(self, pick):
        edges = sorted(self.model.edges())
        return edges[pick % len(edges)] if edges else None

    def _a_non_edge(self, pick):
        n = self.model.num_vertices
        candidates = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not self.model.has_edge(u, v)
        ]
        return candidates[pick % len(candidates)] if candidates else None

    @rule(
        pick=st.integers(0, 10_000),
        s=st.integers(0, 11),
        t=st.integers(0, 11),
    )
    def query(self, pick, s, t):
        edge = self._an_edge(pick)
        if edge is None:
            return
        expected = bfs_distance_between(self.model, s, t, avoid=edge)
        expected = expected if expected != UNREACHED else INF
        assert self.lazy.distance(s, t, edge) == expected

    @rule(pick=st.integers(0, 10_000))
    def insert(self, pick):
        new = self._a_non_edge(pick)
        if new is None:
            return
        self.lazy.insert_edge(*new)
        self.model.add_edge(*new)

    @precondition(lambda self: self.model is not None and self.model.num_edges > 3)
    @rule(pick=st.integers(0, 10_000))
    def commit_failure(self, pick):
        edge = self._an_edge(pick)
        self.lazy.commit_failure(*edge)
        self.model.remove_edge(*edge)

    @invariant()
    def graphs_in_lockstep(self):
        if self.lazy is not None:
            assert self.lazy.graph == self.model

    @invariant()
    def labeling_matches_static_distances(self):
        if self.lazy is None:
            return
        from repro.labeling.query import dist_query

        # Spot-check a diagonal band of static pairs.
        for s in range(0, 12, 5):
            for t in range(0, 12, 3):
                expected = bfs_distance_between(self.model, s, t)
                expected = expected if expected != UNREACHED else INF
                assert dist_query(self.lazy.labeling, s, t) == expected


LazyIndexMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestLazyIndexMachine = LazyIndexMachine.TestCase
