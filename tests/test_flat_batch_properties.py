"""Property-based parity: flat backend ≡ list backend ≡ BFS ground truth.

The acceptance bar for the flat storage refactor is *exact* agreement —
no tolerance — between (a) the scalar list-backend merge join, (b) the
scalar frozen-backend evaluation, (c) the vectorized batch join, and
(d) plain BFS on the graph, over random graphs including disconnected
pairs (``INF``) and ``s == t``.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, batch_dist_query, dist_query
from repro.order.strategies import random_order
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_vertices=2, max_vertices=16):
    """Random simple graphs with at least one edge (disconnection likely)."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    seed = draw(st.integers(0, 2**20))
    density = draw(st.floats(0.05, 0.7))
    rng = random.Random(seed)
    edges = [e for e in possible if rng.random() < density]
    if not edges:
        edges = [possible[seed % len(possible)]]
    return Graph(n, edges)


@given(g=graphs(), order_seed=st.integers(0, 1000))
@settings(max_examples=50, **COMMON)
def test_flat_scalar_and_batch_agree_with_lists_and_bfs(g, order_seed):
    n = g.num_vertices
    listed = build_pll(g, random_order(g, seed=order_seed))
    frozen = listed.copy().freeze()

    pairs = [(s, t) for s in range(n) for t in range(n)]
    batch = batch_dist_query(frozen, pairs)

    i = 0
    for s in range(n):
        truth = bfs_distances(g, s)
        for t in range(n):
            expected = truth[t] if truth[t] != UNREACHED else INF
            assert dist_query(listed, s, t) == expected
            assert dist_query(frozen, s, t) == expected
            assert batch[i] == expected
            i += 1


@given(g=graphs(min_vertices=3, max_vertices=12), seed=st.integers(0, 2**20))
@settings(max_examples=25, **COMMON)
def test_engine_batch_agrees_with_scalar_engine(g, seed):
    index, _ = SIEFBuilder(g).build()
    engine = SIEFQueryEngine(index)
    rng = random.Random(seed)
    n = g.num_vertices
    edges = list(g.edges())
    edge = edges[rng.randrange(len(edges))]
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(40)]
    pairs += [(v, v) for v in range(n)]
    got = engine.batch_query(edge, pairs)
    expected = np.array(
        [engine.distance(s, t, edge) for s, t in pairs], dtype=np.float64
    )
    assert np.array_equal(got, expected)


@given(g=graphs(min_vertices=2, max_vertices=14))
@settings(max_examples=25, **COMMON)
def test_freeze_thaw_round_trip_preserves_equality(g):
    listed = build_pll(g)
    frozen = listed.copy().freeze()
    assert frozen == listed
    assert frozen.copy().thaw() == listed
    assert frozen.validate() == []
