"""Unit tests for the application layer (Scenarios 1–3 + resilience)."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.labeling.query import INF
from repro.core.builder import SIEFBuilder
from repro.analysis.vital_arc import (
    most_vital_arc,
    rank_vital_arcs,
    shortest_path_dag_edges,
)
from repro.analysis.vickrey import edge_worth, vickrey_prices
from repro.analysis.resilience import (
    failure_impact_histogram,
    resilience_profile,
)


@pytest.fixture(scope="module")
def built():
    g = generators.erdos_renyi_gnm(20, 34, seed=12)
    index, _ = SIEFBuilder(g).build()
    return g, index


class TestVitalArc:
    def test_dag_edges_lie_on_shortest_paths(self, built):
        g, _ = built
        from repro.graph.traversal import bfs_distances

        s, t = 0, 13
        base = bfs_distances(g, s)[t]
        for a, b in shortest_path_dag_edges(g, s, t):
            da = bfs_distances(g, s)
            db = bfs_distances(g, t)
            assert (
                da[a] + 1 + db[b] == base or da[b] + 1 + db[a] == base
            )

    def test_most_vital_arc_maximizes_replacement(self, built):
        g, index = built
        from repro.baselines.bfs_query import BFSQueryBaseline

        s, t = 0, 13
        result = most_vital_arc(g, index, s, t)
        baseline = BFSQueryBaseline(g)
        # No edge (on or off shortest paths) does worse than the reported one.
        for edge in g.edges():
            d = baseline.distance(s, t, edge)
            assert d <= result.replacement_distance or (
                result.replacement_distance == INF
            )

    def test_penalty_on_cycle(self, cycle6):
        index, _ = SIEFBuilder(cycle6).build()
        result = most_vital_arc(cycle6, index, 0, 3)
        # C6: base distance 3; failing either incident shortest-path edge
        # forces the 5-long detour... actually distance becomes 5-3+... BFS:
        # around the other way = 6 - 3 = 3, so replacement stays 3? No:
        # failing (0,1) moves 0->3 to path 0-5-4-3 of length 3.
        assert result.base_distance == 3
        assert result.replacement_distance == 3
        assert result.penalty == 0

    def test_bridge_failure_penalty_infinite(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        result = most_vital_arc(two_triangles, index, 0, 5)
        assert result.edge == (2, 3)
        assert result.replacement_distance == INF
        assert result.penalty == INF

    def test_disconnected_pair_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        index, _ = SIEFBuilder(g).build()
        with pytest.raises(ReproError):
            rank_vital_arcs(g, index, 0, 3)

    def test_ranking_sorted_desc(self, built):
        g, index = built
        ranked = rank_vital_arcs(g, index, 0, 13)
        values = [r.replacement_distance for r in ranked]
        assert values == sorted(values, reverse=True)


class TestVickrey:
    def test_off_path_edge_worth_zero(self, cycle6):
        index, _ = SIEFBuilder(cycle6).build()
        # (3,4) is not on any shortest 0-2 path.
        worth = edge_worth(index, (3, 4), 0, 2)
        assert worth.penalty == 0

    def test_bridge_worth_infinite(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        worth = edge_worth(index, (2, 3), 0, 5)
        assert worth.penalty == INF

    def test_prices_weighted_by_volume(self, cycle6):
        index, _ = SIEFBuilder(cycle6).build()
        demands = [(0, 1, 10.0)]
        prices = vickrey_prices(index, demands, [(0, 1), (3, 4)])
        # Avoiding (0,1) forces the 5-hop detour: penalty 4 x volume 10.
        assert prices[(0, 1)] == pytest.approx(40.0)
        assert prices[(3, 4)] == 0.0

    def test_disconnect_penalty_configurable(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        prices = vickrey_prices(
            index, [(0, 5, 2.0)], [(2, 3)], disconnect_penalty=100.0
        )
        assert prices[(2, 3)] == pytest.approx(200.0)

    def test_unroutable_demand_ignored(self):
        g = Graph(4, [(0, 1), (2, 3)])
        index, _ = SIEFBuilder(g).build()
        prices = vickrey_prices(index, [(0, 3, 5.0)], [(0, 1)])
        assert prices[(0, 1)] == 0.0


class TestResilience:
    def test_profile_accounting(self, built):
        g, index = built
        profile = resilience_profile(index, num_queries=300, seed=1)
        assert profile.queries == 300
        assert (
            profile.unchanged + profile.stretched + profile.disconnected
            == 300
        )
        assert 0.0 <= profile.disconnect_rate <= 1.0
        assert 0.0 <= profile.affected_rate <= 1.0
        if profile.stretched:
            assert profile.mean_stretch > 1.0
            assert profile.max_stretch >= profile.mean_stretch

    def test_profile_deterministic(self, built):
        _, index = built
        a = resilience_profile(index, num_queries=100, seed=7)
        b = resilience_profile(index, num_queries=100, seed=7)
        assert a == b

    def test_tree_always_disconnects(self):
        g = generators.random_tree(20, seed=3)
        index, _ = SIEFBuilder(g).build()
        profile = resilience_profile(index, num_queries=200, seed=2)
        assert profile.stretched == 0  # tree failures only ever disconnect
        assert profile.disconnected > 0

    def test_impact_histogram_sorted(self, built):
        _, index = built
        ranked = failure_impact_histogram(index, top=5)
        assert len(ranked) == 5
        impacts = [count for _, count in ranked]
        assert impacts == sorted(impacts, reverse=True)

    def test_impact_histogram_counts_match_index(self, built):
        _, index = built
        (edge, count), *_ = failure_impact_histogram(index, top=1)
        assert index.supplement(*edge).affected.total == count
