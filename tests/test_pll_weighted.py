"""Unit tests for the weighted (pruned-Dijkstra) labeling."""

from __future__ import annotations

import random

import pytest

from repro.graph import generators
from repro.graph.traversal import dijkstra_distances
from repro.graph.weighted import WeightedGraph
from repro.labeling.pll_weighted import build_weighted_pll
from repro.labeling.query import INF, dist_query


def random_weighted(seed: int, n: int = 20, m: int = 38) -> WeightedGraph:
    rng = random.Random(seed)
    base = generators.erdos_renyi_gnm(n, m, seed=seed)
    wg = WeightedGraph(n)
    for u, v in base.edges():
        wg.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.0, 3.5]))
    return wg


@pytest.mark.parametrize("seed", range(8))
def test_exact_cover_on_random_weighted_graphs(seed):
    wg = random_weighted(seed)
    labeling = build_weighted_pll(wg)
    for s in range(wg.num_vertices):
        truth = dijkstra_distances(wg, s)
        for t in range(wg.num_vertices):
            assert dist_query(labeling, s, t) == pytest.approx(truth[t])


def test_unit_weights_match_unweighted_pll():
    g = generators.erdos_renyi_gnm(24, 44, seed=3)
    wg = WeightedGraph.from_unweighted(g)
    from repro.labeling.pll import build_pll

    unweighted = build_pll(g)
    weighted = build_weighted_pll(wg)
    for s in range(24):
        for t in range(24):
            assert dist_query(weighted, s, t) == dist_query(unweighted, s, t)


def test_well_ordered():
    wg = random_weighted(11)
    labeling = build_weighted_pll(wg)
    assert labeling.validate() == []


def test_disconnected_weighted():
    wg = WeightedGraph(4, [(0, 1, 2.0), (2, 3, 1.0)])
    labeling = build_weighted_pll(wg)
    assert dist_query(labeling, 0, 3) == INF
    assert dist_query(labeling, 0, 1) == 2.0


def test_weighted_shortcut_respected():
    # Direct heavy edge vs light two-hop path.
    wg = WeightedGraph(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
    labeling = build_weighted_pll(wg)
    assert dist_query(labeling, 0, 1) == 2.0
