"""Adversarial traversal cases: termination and tie-break correctness."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import (
    UNREACHED,
    bfs_distance_between,
    bidirectional_bfs,
    shortest_path,
)


class TestBidirectionalAdversarial:
    def test_long_path_exact(self):
        g = generators.path_graph(60)
        assert bidirectional_bfs(g, 0, 59) == 59
        assert bidirectional_bfs(g, 10, 50) == 40

    def test_long_cycle_with_chord(self):
        # The chord creates a near-tie the early-exit logic must respect.
        g = generators.cycle_graph(40)
        g.add_edge(0, 19)
        for t in range(40):
            assert bidirectional_bfs(g, 0, t) == bfs_distance_between(
                g, 0, t
            ), t

    def test_unbalanced_degrees(self, star7):
        # Star: one side's frontier explodes, the other's stays tiny.
        assert bidirectional_bfs(star7, 1, 2) == 2
        assert bidirectional_bfs(star7, 0, 6) == 1

    def test_two_long_arms(self):
        # Distinct-length parallel arms between the endpoints.
        g = Graph(12)
        for i in range(4):  # arm A: 0-1-2-3-4-5 (length 5)
            g.add_edge(i, i + 1)
        g.add_edge(4, 5)
        g.add_edge(0, 6)    # arm B: 0-6-7-8-9-10-11-5 (length 7)
        for i in range(6, 11):
            g.add_edge(i, i + 1)
        g.add_edge(11, 5)
        assert bidirectional_bfs(g, 0, 5) == 5

    def test_avoid_edge_forces_other_arm(self):
        g = generators.cycle_graph(10)
        assert bidirectional_bfs(g, 0, 5, avoid=(0, 1)) == 5
        assert bidirectional_bfs(g, 0, 1, avoid=(0, 1)) == 9

    @pytest.mark.parametrize("seed", range(12))
    def test_dense_random_agreement(self, seed):
        g = generators.erdos_renyi_gnm(30, 140, seed=seed)
        for s in range(0, 30, 7):
            for t in range(30):
                assert bidirectional_bfs(g, s, t) == (
                    bfs_distance_between(g, s, t)
                )


class TestShortestPathTieBreaks:
    def test_any_returned_path_is_shortest(self):
        g = generators.erdos_renyi_gnm(25, 60, seed=8)
        for s in range(0, 25, 5):
            for t in range(0, 25, 6):
                path = shortest_path(g, s, t)
                d = bfs_distance_between(g, s, t)
                if d == UNREACHED:
                    assert path is None
                else:
                    assert path is not None and len(path) - 1 == d

    def test_path_has_no_repeated_vertices(self):
        g = generators.powerlaw_cluster(40, 3, 0.6, seed=9)
        path = shortest_path(g, 0, 39)
        if path:
            assert len(set(path)) == len(path)

    def test_grid_path_length(self):
        g = generators.grid_graph(5, 7)
        # Manhattan distance corner to corner.
        path = shortest_path(g, 0, 5 * 7 - 1)
        assert path is not None
        assert len(path) - 1 == (5 - 1) + (7 - 1)
