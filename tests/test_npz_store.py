"""The frozen npz store: mmap zero-copy, parity, shm transport.

The serving daemon's whole memory story rests on one claim: loading an
index with ``mmap_mode="r"`` maps the label arrays straight out of the
file, so N worker processes share one physical copy through the page
cache.  These tests pin that claim down — OWNDATA flags, memmap bases,
bit-identical answers, byte-identical re-serialization — plus the
failure modes (compressed stores, bad files) and the PR 4 shared-memory
transport reused for the packed arrays.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.builder import SIEFBuilder
from repro.core.index import SIEFIndex
from repro.core.npzstore import (
    attach_index,
    load_index_npz,
    pack_index,
    publish_index,
    save_index_npz,
    unpack_index,
)
from repro.core.query import SIEFQueryEngine
from repro.core.serialize import index_to_bytes
from repro.exceptions import SerializationError
from repro.graph import generators


def random_graph(seed: int, n: int = 24, m: int = 40):
    return generators.erdos_renyi_gnm(n, m, seed=seed)


def build_index(graph) -> SIEFIndex:
    index, _report = SIEFBuilder(graph).build()
    return index.freeze()


@pytest.fixture(scope="module")
def er_index() -> SIEFIndex:
    return build_index(random_graph(seed=11, n=30, m=55))


def all_pairs_sample(n: int, seed: int = 0, k: int = 60) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(k, 2), dtype=np.int64)


def memmap_root(arr):
    """The np.memmap at the bottom of a view chain, or None."""
    while isinstance(arr, np.ndarray):
        if isinstance(arr, np.memmap):
            return arr
        arr = arr.base
    return None


def assert_same_answers(a: SIEFIndex, b: SIEFIndex, seed: int = 0) -> None:
    ea, eb = SIEFQueryEngine(a), SIEFQueryEngine(b)
    pairs = all_pairs_sample(a.labeling.num_vertices, seed)
    for edge in sorted(a.supplements):
        assert np.array_equal(ea.batch_query(edge, pairs), eb.batch_query(edge, pairs))


# ---------------------------------------------------------------------------
# round-trip parity
# ---------------------------------------------------------------------------


def test_npz_roundtrip_in_memory(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    loaded = load_index_npz(path)
    assert loaded.num_cases == er_index.num_cases
    assert loaded.labeling.num_vertices == er_index.labeling.num_vertices
    assert_same_answers(er_index, loaded)


def test_npz_roundtrip_serialize_parity(tmp_path, er_index):
    """Thawing a store must reproduce the legacy format byte-for-byte."""
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    assert index_to_bytes(load_index_npz(path)) == index_to_bytes(er_index)
    assert index_to_bytes(
        load_index_npz(path, mmap_mode="r")
    ) == index_to_bytes(er_index)


def test_pack_unpack_without_disk(er_index):
    rebuilt = unpack_index(pack_index(er_index))
    assert_same_answers(er_index, rebuilt)


def test_save_via_index_method_and_suffix_routing(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    er_index.save_npz(path)
    loaded = SIEFIndex.load(path, mmap_mode="r")
    assert_same_answers(er_index, loaded)
    with pytest.raises(ValueError, match="mmap_mode"):
        SIEFIndex.load(tmp_path / "idx.sief", mmap_mode="r")


def test_compressed_roundtrip_but_no_mmap(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path, compress=True)
    assert_same_answers(er_index, load_index_npz(path))
    with pytest.raises(SerializationError, match="compress"):
        load_index_npz(path, mmap_mode="r")


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"definitely not a zip archive")
    with pytest.raises(SerializationError):
        load_index_npz(path)
    with pytest.raises(SerializationError):
        load_index_npz(path, mmap_mode="r")


def test_mmap_mode_validation(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    with pytest.raises(ValueError, match="mmap_mode"):
        load_index_npz(path, mmap_mode="r+")


# ---------------------------------------------------------------------------
# the zero-copy claim
# ---------------------------------------------------------------------------


def test_mmap_load_does_not_copy_label_arrays(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    mapped = load_index_npz(path, mmap_mode="r")
    lab = mapped.labeling
    for arr in (lab.hubs_flat, lab.dists_flat, lab.offsets):
        assert not arr.flags["OWNDATA"]
        assert arr.base is not None
        assert memmap_root(arr) is not None, "label array is not file-backed"


def test_mmap_supplement_views_are_file_backed(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    mapped = load_index_npz(path, mmap_mode="r")
    edge = next(iter(sorted(mapped.supplements)))
    flat = mapped.supplements[edge].flat()
    for arr in (flat.ranks, flat.dists):
        if arr.size == 0:
            continue
        assert not arr.flags["OWNDATA"]
        assert memmap_root(arr) is not None


def test_two_readers_share_one_physical_copy(tmp_path, er_index):
    """Two independent mmap loads must resolve to the same file pages."""
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    a = load_index_npz(path, mmap_mode="r")
    b = load_index_npz(path, mmap_mode="r")

    ra = memmap_root(a.labeling.hubs_flat)
    rb = memmap_root(b.labeling.hubs_flat)
    assert ra is not None and rb is not None
    assert ra.filename == rb.filename
    # Same file offset -> the kernel backs both with the same page-cache
    # pages; nothing was copied into either reader's heap.
    assert ra.offset == rb.offset
    assert_same_answers(a, b)


def test_mmap_arrays_are_read_only(tmp_path, er_index):
    path = tmp_path / "idx.npz"
    save_index_npz(er_index, path)
    mapped = load_index_npz(path, mmap_mode="r")
    with pytest.raises((ValueError, RuntimeError)):
        mapped.labeling.hubs_flat[0] = 99


def test_mmap_answers_identical_scalar_and_batch(tmp_path):
    graph = generators.watts_strogatz(26, 4, 0.2, seed=5)
    index = build_index(graph)
    path_ = None
    import tempfile, os

    with tempfile.TemporaryDirectory() as d:
        path_ = os.path.join(d, "idx.npz")
        save_index_npz(index, path_)
        mapped = load_index_npz(path_, mmap_mode="r")
        base_eng = SIEFQueryEngine(index)
        map_eng = SIEFQueryEngine(mapped)
        pairs = all_pairs_sample(graph.num_vertices, seed=2, k=40)
        for edge in sorted(index.supplements)[:12]:
            assert np.array_equal(
                base_eng.batch_query(edge, pairs),
                map_eng.batch_query(edge, pairs),
            )
            for s, t in pairs[:8]:
                x = base_eng.distance(int(s), int(t), edge)
                y = map_eng.distance(int(s), int(t), edge)
                assert x == y or (math.isinf(x) and math.isinf(y))


# ---------------------------------------------------------------------------
# shared-memory transport (PR 4 arena reuse)
# ---------------------------------------------------------------------------


def test_publish_attach_roundtrip(er_index):
    arena = publish_index(er_index)
    try:
        reader, attached = attach_index(arena.spec())
        try:
            assert_same_answers(er_index, attached)
        finally:
            reader.close()
    finally:
        arena.close()
        arena.unlink()


def test_attached_index_is_zero_copy(er_index):
    arena = publish_index(er_index)
    try:
        reader, attached = attach_index(arena.spec())
        try:
            assert not attached.labeling.hubs_flat.flags["OWNDATA"]
        finally:
            reader.close()
    finally:
        arena.close()
        arena.unlink()


def test_two_attachments_one_segment(er_index):
    """Two attached readers see the same bytes from one shm segment."""
    arena = publish_index(er_index)
    try:
        r1, a1 = attach_index(arena.spec())
        r2, a2 = attach_index(arena.spec())
        try:
            assert r1.name == r2.name == arena.name
            assert np.array_equal(
                a1.labeling.hubs_flat, a2.labeling.hubs_flat
            )
            assert_same_answers(a1, a2)
        finally:
            r1.close()
            r2.close()
    finally:
        arena.close()
        arena.unlink()


# ---------------------------------------------------------------------------
# tiny/degenerate shapes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "graph",
    [
        generators.path_graph(2),
        generators.star_graph(4),
        generators.cycle_graph(5),
        generators.compose_disjoint(
            [generators.path_graph(3), generators.path_graph(2)]
        ),
    ],
    ids=["path2", "star4", "cycle5", "disconnected"],
)
def test_small_shapes_roundtrip(tmp_path, graph):
    index = build_index(graph)
    path = tmp_path / "idx.npz"
    save_index_npz(index, path)
    for mode in (None, "r"):
        loaded = load_index_npz(path, mmap_mode=mode)
        assert_same_answers(index, loaded, seed=3)
        assert index_to_bytes(loaded) == index_to_bytes(index)
