"""Failure-injection tests: corrupted persisted data must fail loudly.

A production index loader's contract: any corrupted input either raises
:class:`SerializationError` or — when the corruption happens to stay
structurally valid — loads into an object that passes its own validators.
It must never crash the interpreter or silently return a structurally
broken index.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ReproError, SerializationError
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.serialize import labeling_from_bytes, labeling_to_bytes
from repro.core.builder import SIEFBuilder
from repro.core.serialize import index_from_bytes, index_to_bytes


@pytest.fixture(scope="module")
def blobs():
    g = generators.erdos_renyi_gnm(14, 24, seed=31)
    labeling = build_pll(g)
    index, _ = SIEFBuilder(g, labeling).build()
    return labeling_to_bytes(labeling), index_to_bytes(index)


def _flip(blob: bytes, position: int, value: int) -> bytes:
    corrupted = bytearray(blob)
    corrupted[position] ^= value
    return bytes(corrupted)


class TestLabelingFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_byte_flip_never_crashes(self, blobs, seed):
        label_blob, _ = blobs
        rng = random.Random(seed)
        corrupted = _flip(
            label_blob, rng.randrange(len(label_blob)), rng.randrange(1, 256)
        )
        try:
            loaded = labeling_from_bytes(corrupted)
        except ReproError:
            return  # loud failure: acceptable
        except (ValueError, OverflowError, MemoryError):
            pytest.fail("leaked a non-repro exception")
        # Quiet load: the object must at least be self-consistent in
        # shape (parallel arrays); content may legitimately differ.
        for v in range(loaded.num_vertices):
            assert len(loaded.hub_ranks[v]) == len(loaded.hub_dists[v])

    @pytest.mark.parametrize("cut", [0, 7, 8, 9, 30])
    def test_truncations(self, blobs, cut):
        label_blob, _ = blobs
        with pytest.raises(SerializationError):
            labeling_from_bytes(label_blob[:cut])

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            labeling_from_bytes(b"")


class TestIndexFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_byte_flip_never_crashes(self, blobs, seed):
        _, index_blob = blobs
        rng = random.Random(seed)
        corrupted = _flip(
            index_blob, rng.randrange(len(index_blob)), rng.randrange(1, 256)
        )
        try:
            index_from_bytes(corrupted)
        except ReproError:
            return
        except (ValueError, OverflowError, MemoryError, KeyError):
            pytest.fail("leaked a non-repro exception")

    @pytest.mark.parametrize("cut", [0, 7, 8, 23, 24, 100])
    def test_truncations(self, blobs, cut):
        _, index_blob = blobs
        with pytest.raises(SerializationError):
            index_from_bytes(index_blob[:cut])

    def test_swapped_magic_types_rejected(self, blobs):
        label_blob, index_blob = blobs
        # Feeding each loader the other's format must be a loud failure.
        with pytest.raises(SerializationError):
            index_from_bytes(label_blob)
        with pytest.raises(SerializationError):
            labeling_from_bytes(index_blob)


class TestEdgeListFuzz:
    @pytest.mark.parametrize(
        "content",
        [
            "a\n",
            "1 2 3 extra is fine\n1\n",
            "\x00\x01 2\n",
        ],
    )
    def test_bad_lines_raise_serialization_error(self, tmp_path, content):
        path = tmp_path / "bad.txt"
        path.write_text(content)
        from repro.graph.io import read_edge_list

        try:
            read_edge_list(path)
        except SerializationError:
            pass  # expected for the malformed rows
