"""Property-based parity for the weighted and directed engines.

PR 1's hypothesis suite covered the unweighted flat/batch path only;
this closes the gap (ISSUE 2 satellite): for every edge/arc failure on
random weighted graphs and digraphs, the extension engines must agree
with avoiding-Dijkstra / avoiding-BFS ground truth over **all** pairs —
including disconnected ones and ``s == t``.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.failures.directed import build_directed_sief
from repro.failures.weighted import build_weighted_sief, close
from repro.graph.digraph import DiGraph
from repro.graph.weighted import WeightedGraph
from repro.testing.oracles import directed_truth, weighted_truth

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graphs(draw, min_vertices=3, max_vertices=11):
    """Random weighted graphs; weights are multiples of 0.5 in [0.5, 4]."""
    n = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 2**20))
    density = draw(st.floats(0.15, 0.7))
    rng = random.Random(seed)
    edges = [
        (u, v, 0.5 * rng.randint(1, 8))
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < density
    ]
    if not edges:
        edges = [(0, 1, 1.5)]
    return WeightedGraph(n, edges)


@st.composite
def digraphs(draw, min_vertices=3, max_vertices=10):
    """Random digraphs mixing one-way and reciprocal arcs."""
    n = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 2**20))
    density = draw(st.floats(0.1, 0.5))
    rng = random.Random(seed)
    arcs = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < density
    ]
    if not arcs:
        arcs = [(0, 1)]
    return DiGraph(n, arcs)


@given(wg=weighted_graphs())
@settings(max_examples=30, **COMMON)
def test_weighted_sief_matches_dijkstra_for_every_failure(wg):
    index = build_weighted_sief(wg)
    n = wg.num_vertices
    pairs = [(s, t) for s in range(n) for t in range(n)]
    for u, v, _w in wg.edges():
        truth = weighted_truth(wg, (u, v), pairs)
        for (s, t), expected in zip(pairs, truth):
            got = index.distance(s, t, (u, v))
            assert close(got, expected), (
                f"failure ({u},{v}) query ({s},{t}): "
                f"weighted SIEF {got}, Dijkstra {expected}"
            )


@given(dg=digraphs())
@settings(max_examples=30, **COMMON)
def test_directed_sief_matches_bfs_for_every_arc_failure(dg):
    index = build_directed_sief(dg)
    n = dg.num_vertices
    pairs = [(s, t) for s in range(n) for t in range(n)]
    for u, v in dg.arcs():
        truth = directed_truth(dg, (u, v), pairs)
        for (s, t), expected in zip(pairs, truth):
            got = index.distance(s, t, (u, v))
            assert got == expected, (
                f"failed arc ({u}->{v}) query ({s}->{t}): "
                f"directed SIEF {got}, BFS {expected}"
            )
