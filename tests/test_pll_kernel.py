"""Bit-identity of the compiled PLL construction kernel (ISSUE 9).

``build_pll`` dispatches whole-labeling construction to the C kernel
when the accelerated tier provides one.  The kernel must reproduce the
numpy implementation byte-for-byte — same hubs, same distances, same
per-vertex order — on every topology, because every downstream artifact
(supplements, segment stores, frozen indexes) is keyed to it.
"""

from __future__ import annotations

import random

import pytest

from repro import kernels
from repro.graph import generators
from repro.graph.graph import Graph
from repro.labeling.pll import build_pll
from repro.labeling.serialize import labeling_to_bytes
from repro.order.strategies import STRATEGIES, make_ordering

with kernels.use_tier("auto"):
    _, _PLL_KERNEL = kernels.resolve("pll")

pytestmark = pytest.mark.skipif(
    _PLL_KERNEL is None,
    reason="no compiled PLL kernel available on this host",
)


def _blob(graph: Graph, tier: str, strategy: str = "degree") -> bytes:
    kwargs = {"seed": 9} if strategy == "random" else {}
    with kernels.use_tier(tier):
        ordering = make_ordering(graph, strategy, **kwargs)
        return labeling_to_bytes(build_pll(graph, ordering))


GRAPHS = {
    "ba": generators.barabasi_albert(300, 3, seed=1),
    "er": generators.erdos_renyi_gnm(250, 600, seed=2),
    "grid": generators.grid_graph(14, 14),
    "tree": generators.random_tree(200, seed=3),
    "disconnected": generators.compose_disjoint(
        [
            generators.random_tree(40, seed=4),
            Graph(1, []),
            generators.erdos_renyi_gnm(25, 40, seed=4),
            generators.barabasi_albert(60, 2, seed=4),
        ]
    ),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_kernel_matches_numpy_across_topologies(name):
    graph = GRAPHS[name]
    assert _blob(graph, "auto") == _blob(graph, "numpy")


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_kernel_matches_numpy_across_orderings(strategy):
    graph = generators.erdos_renyi_gnm(120, 260, seed=6)
    assert _blob(graph, "auto", strategy) == _blob(graph, "numpy", strategy)


def test_kernel_matches_numpy_on_random_sweep():
    rng = random.Random(77)
    for _ in range(12):
        n = rng.randint(2, 60)
        m = rng.randint(0, min(3 * n, n * (n - 1) // 2))
        seen = set()
        while len(seen) < m:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                seen.add((min(u, v), max(u, v)))
        graph = Graph(n, sorted(seen))
        assert _blob(graph, "auto") == _blob(graph, "numpy")


def test_kernel_output_thaws_cleanly():
    graph = GRAPHS["ba"]
    with kernels.use_tier("auto"):
        frozen = build_pll(graph, make_ordering(graph, "degree"))
        thawed = build_pll(graph, make_ordering(graph, "degree"), freeze=False)
    assert labeling_to_bytes(frozen) == labeling_to_bytes(thawed)
