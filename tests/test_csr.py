"""Unit tests for the CSR graph view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, VertexNotFound
from repro.graph.csr import CSRGraph
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances


def test_round_trip():
    g = generators.erdos_renyi_gnm(30, 70, seed=1)
    csr = CSRGraph.from_graph(g)
    assert csr.to_graph() == g


def test_counts():
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    csr = CSRGraph.from_graph(g)
    assert csr.num_vertices == 4
    assert csr.num_edges == 3


def test_neighbors_and_degrees():
    g = Graph(4, [(0, 1), (0, 2), (0, 3)])
    csr = CSRGraph.from_graph(g)
    assert list(csr.neighbors(0)) == [1, 2, 3]
    assert csr.degree(0) == 3
    assert list(csr.degrees()) == [3, 1, 1, 1]


def test_neighbor_out_of_range():
    csr = CSRGraph.from_graph(Graph(2, [(0, 1)]))
    with pytest.raises(VertexNotFound):
        csr.neighbors(5)


def test_adjacency_interops_with_traversal():
    g = generators.cycle_graph(8)
    csr = CSRGraph.from_graph(g)
    assert bfs_distances(csr.adjacency(), 0) == bfs_distances(g, 0)


def test_empty_graph():
    csr = CSRGraph.from_graph(Graph(3))
    assert csr.num_edges == 0
    assert list(csr.neighbors(1)) == []


def test_malformed_indptr_rejected():
    with pytest.raises(GraphError):
        CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32))


def test_indices_out_of_range_rejected():
    with pytest.raises(GraphError):
        CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))


def test_nbytes_positive():
    csr = CSRGraph.from_graph(generators.cycle_graph(10))
    assert csr.nbytes() > 0


def test_equality():
    a = CSRGraph.from_graph(generators.cycle_graph(5))
    b = CSRGraph.from_graph(generators.cycle_graph(5))
    c = CSRGraph.from_graph(generators.path_graph(5))
    assert a == b
    assert a != c
