"""Unit tests for SIEFBuilder, SIEFIndex and the build report."""

from __future__ import annotations

import pytest

from repro.exceptions import FailureCaseNotIndexed, IndexError_
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.core.builder import SIEFBuilder, build_sief
from repro.core.index import SIEFIndex
from repro.core.affected import identify_affected
from repro.core.bfs_aff import build_supplemental_bfs_aff


class TestBuilder:
    def test_every_edge_indexed(self, paper_graph):
        index, report = SIEFBuilder(paper_graph).build()
        assert index.num_cases == paper_graph.num_edges
        assert report.num_cases == paper_graph.num_edges
        for u, v in paper_graph.edges():
            assert index.has_case(u, v)

    def test_edge_subset(self, paper_graph):
        index, report = SIEFBuilder(paper_graph).build(edges=[(0, 8), (6, 9)])
        assert index.num_cases == 2
        assert index.has_case(8, 0)
        assert not index.has_case(0, 1)

    def test_labeling_built_when_missing(self, paper_graph):
        builder = SIEFBuilder(paper_graph)
        assert builder.labeling.total_entries() > 0

    def test_prebuilt_labeling_reused(self, paper_graph, paper_labeling):
        builder = SIEFBuilder(paper_graph, paper_labeling)
        assert builder.labeling is paper_labeling

    def test_unknown_algorithm_rejected(self, paper_graph):
        with pytest.raises(IndexError_, match="unknown relabel algorithm"):
            SIEFBuilder(paper_graph, algorithm="dfs")

    def test_build_case_single(self, paper_graph, paper_labeling):
        builder = SIEFBuilder(paper_graph, paper_labeling)
        si, record = builder.build_case(0, 8)
        assert record.edge == (0, 8)
        assert record.affected_u == 2 and record.affected_v == 1
        assert record.supplemental_entries == si.total_entries() == 1
        assert record.identify_seconds >= 0
        assert record.relabel_seconds >= 0

    def test_report_aggregates(self, paper_graph):
        _, report = SIEFBuilder(paper_graph).build()
        assert report.identify_seconds > 0
        assert report.relabel_seconds >= 0
        assert report.avg_affected == pytest.approx(
            sum(r.affected_total for r in report.records) / report.num_cases
        )
        assert report.total_supplemental_entries == sum(
            r.supplemental_entries for r in report.records
        )

    def test_build_sief_convenience(self, cycle6):
        index = build_sief(cycle6)
        assert isinstance(index, SIEFIndex)
        assert index.num_cases == 6

    @pytest.mark.parametrize("algorithm", ["bfs_aff", "bfs_all"])
    def test_both_algorithms_full_build_agree(self, algorithm, paper_graph):
        index, _ = SIEFBuilder(paper_graph, algorithm=algorithm).build()
        assert index.num_cases == paper_graph.num_edges


class TestIndex:
    def test_supplement_lookup_canonical(self, paper_graph, paper_labeling):
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        assert index.supplement(8, 0) is index.supplement(0, 8)

    def test_missing_case_raises(self, paper_graph, paper_labeling):
        index = SIEFIndex(paper_labeling)
        with pytest.raises(FailureCaseNotIndexed):
            index.supplement(0, 8)

    def test_add_supplement_edge_mismatch_rejected(
        self, paper_graph, paper_labeling
    ):
        av = identify_affected(paper_graph, 0, 8)
        si = build_supplemental_bfs_aff(paper_graph, paper_labeling, av)
        index = SIEFIndex(paper_labeling)
        with pytest.raises(IndexError_):
            index.add_supplement((0, 1), si)

    def test_iter_cases_sorted(self, paper_graph):
        index, _ = SIEFBuilder(paper_graph).build()
        edges = [edge for edge, _ in index.iter_cases()]
        assert edges == sorted(edges)

    def test_total_supplemental_entries(self, paper_graph):
        index, report = SIEFBuilder(paper_graph).build()
        assert index.total_supplemental_entries() == (
            report.total_supplemental_entries
        )

    def test_repr(self, paper_graph):
        index, _ = SIEFBuilder(paper_graph).build()
        assert "SIEFIndex" in repr(index)


class TestDeterminism:
    def test_rebuild_is_identical(self):
        g = generators.erdos_renyi_gnm(18, 30, seed=13)
        labeling = build_pll(g)
        a, _ = SIEFBuilder(g, labeling).build()
        b, _ = SIEFBuilder(g, labeling).build()
        for edge, si in a.iter_cases():
            assert b.supplement(*edge) == si
