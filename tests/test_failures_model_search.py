"""Unit tests for failure workloads and avoid-set traversal."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distance_between, UNREACHED
from repro.labeling.query import INF
from repro.core.builder import SIEFBuilder
from repro.failures.model import (
    FailureScenario,
    cross_side_query_triples,
    random_failed_edges,
    random_query_triples,
)
from repro.failures.search import bfs_avoiding, bfs_distance_avoiding


class TestScenario:
    def test_edges_canonicalized(self):
        s = FailureScenario(failed_edges=((5, 2),))
        assert s.failed_edges == ((2, 5),)
        assert s.is_single_edge

    def test_multi_failure_not_single(self):
        s = FailureScenario(failed_edges=((0, 1), (1, 2)))
        assert not s.is_single_edge


class TestWorkloads:
    def test_random_failed_edges_are_edges(self, paper_graph):
        for edge in random_failed_edges(paper_graph, 50, seed=1):
            assert paper_graph.has_edge(*edge)

    def test_distinct_sampling(self, paper_graph):
        edges = random_failed_edges(paper_graph, 10, seed=1, distinct=True)
        assert len(set(edges)) == 10

    def test_distinct_overflow_rejected(self, cycle6):
        with pytest.raises(ReproError):
            random_failed_edges(cycle6, 7, distinct=True)

    def test_empty_graph_rejected(self):
        with pytest.raises(ReproError):
            random_failed_edges(Graph(3), 1)

    def test_query_triples_shape(self, paper_graph):
        triples = random_query_triples(paper_graph, 30, seed=2)
        assert len(triples) == 30
        for q in triples:
            assert q.s != q.t
            assert paper_graph.has_edge(*q.edge)

    def test_query_triples_deterministic(self, paper_graph):
        a = random_query_triples(paper_graph, 10, seed=3)
        b = random_query_triples(paper_graph, 10, seed=3)
        assert a == b

    def test_cross_side_triples_hit_case4(self, paper_graph, paper_labeling):
        from repro.core.query import QueryCase, SIEFQueryEngine

        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        engine = SIEFQueryEngine(index)
        for q in cross_side_query_triples(index, 40, seed=4):
            _d, case = engine.distance_with_case(q.s, q.t, q.edge)
            assert case is QueryCase.CROSS_SIDES


class TestAvoidSetSearch:
    def test_single_edge_matches_specialized(self):
        g = generators.erdos_renyi_gnm(20, 36, seed=5)
        edge = next(iter(g.edges()))
        for s in range(0, 20, 4):
            for t in range(0, 20, 3):
                specialized = bfs_distance_between(g, s, t, avoid=edge)
                expected = specialized if specialized != UNREACHED else INF
                assert bfs_distance_avoiding(
                    g, s, t, avoid_edges=(edge,)
                ) == expected

    def test_avoid_vertex(self, path5):
        assert bfs_distance_avoiding(path5, 0, 4, avoid_vertices=(2,)) == INF
        assert bfs_distance_avoiding(path5, 0, 1, avoid_vertices=(2,)) == 1

    def test_avoid_vertex_endpoint_is_inf(self, path5):
        assert bfs_distance_avoiding(path5, 0, 4, avoid_vertices=(0,)) == INF
        assert bfs_distance_avoiding(path5, 2, 2, avoid_vertices=(2,)) == INF

    def test_two_edges(self, cycle6):
        # Removing both edges incident to vertex 0 isolates it.
        assert bfs_distance_avoiding(
            cycle6, 0, 3, avoid_edges=((0, 1), (5, 0))
        ) == INF

    def test_bfs_avoiding_vector(self, cycle6):
        dist = bfs_avoiding(cycle6, 0, avoid_edges=((0, 1),))
        assert dist[1] == 5
        dist2 = bfs_avoiding(cycle6, 0, avoid_vertices=(3,))
        assert dist2[3] == UNREACHED

    def test_source_avoided_gives_all_unreached(self, path5):
        dist = bfs_avoiding(path5, 2, avoid_vertices=(2,))
        assert all(d == UNREACHED for d in dist)
