"""Tests for SIEF index integrity verification (and its CLI command)."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.core.builder import SIEFBuilder
from repro.core.verify import structural_problems, verify_index


@pytest.fixture(scope="module")
def built():
    g = generators.erdos_renyi_gnm(18, 32, seed=50)
    index, _ = SIEFBuilder(g).build()
    return g, index


class TestHealthyIndex:
    def test_passes_all_levels(self, built):
        g, index = built
        assert verify_index(index, g, sample_cases=None) == []

    def test_sampled_verification(self, built):
        g, index = built
        assert verify_index(index, g, sample_cases=5, seed=3) == []


class TestCorruptions:
    def test_wrong_graph_detected(self, built):
        _g, index = built
        other = generators.erdos_renyi_gnm(18, 32, seed=51)
        problems = verify_index(index, other)
        assert problems  # some case disagrees somewhere

    def test_vertex_count_mismatch(self, built):
        _g, index = built
        small = generators.cycle_graph(5)
        problems = structural_problems(index, small)
        assert any("vertices" in p for p in problems)

    def test_tampered_distance_detected(self, built):
        g, index = built
        from repro.core.serialize import index_from_bytes, index_to_bytes

        tampered = index_from_bytes(index_to_bytes(index))
        # Find a case with a supplemental entry and *shrink* a distance:
        # an undercut answer can never be masked by other entries (the
        # minimum only drops), unlike an inflated one which later hubs
        # may legitimately cover.
        for edge, si in tampered.iter_cases():
            for _t, sl in si.iter_labels():
                sl.dists[0] -= 1
                break
            else:
                continue
            break
        problems = verify_index(
            tampered, g, sample_cases=None, queries_per_case=500
        )
        assert any("query" in p for p in problems)

    def test_tampered_affected_set_detected(self, built):
        g, index = built
        from repro.core.affected import AffectedVertices
        from repro.core.serialize import index_from_bytes, index_to_bytes

        tampered = index_from_bytes(index_to_bytes(index))
        edge, si = next(
            (e, s)
            for e, s in tampered.iter_cases()
            if len(s.affected.side_u) > 1
        )
        # Drop a vertex from one affected side.
        side_u = tuple(si.affected.side_u[:-1])
        si.affected = AffectedVertices(
            u=si.affected.u,
            v=si.affected.v,
            side_u=side_u,
            side_v=si.affected.side_v,
            disconnected=si.affected.disconnected,
        )
        problems = verify_index(tampered, g, sample_cases=None)
        assert problems

    def test_well_ordering_violation_detected(self, built):
        g, index = built
        from repro.core.serialize import index_from_bytes, index_to_bytes

        tampered = index_from_bytes(index_to_bytes(index))
        for _edge, si in tampered.iter_cases():
            for t, sl in si.iter_labels():
                sl.ranks[0] = tampered.labeling.ordering.rank(t) + 1
                break
            else:
                continue
            break
        problems = structural_problems(tampered, g)
        assert any("well-ordering" in p for p in problems)


class TestCheckCommand:
    def test_cli_check_ok(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        g = generators.erdos_renyi_gnm(14, 24, seed=52)
        graph_file = tmp_path / "g.txt"
        write_edge_list(g, graph_file)
        index_file = tmp_path / "g.sief"
        main(["build", str(graph_file), "-o", str(index_file)])
        capsys.readouterr()
        rc = main(["check", str(graph_file), str(index_file)])
        assert rc == 0
        assert "ok: index consistent" in capsys.readouterr().out

    def test_cli_check_detects_mismatch(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        g = generators.erdos_renyi_gnm(14, 24, seed=53)
        h = generators.erdos_renyi_gnm(14, 24, seed=54)
        graph_file = tmp_path / "g.txt"
        other_file = tmp_path / "h.txt"
        write_edge_list(g, graph_file)
        write_edge_list(h, other_file)
        index_file = tmp_path / "g.sief"
        main(["build", str(graph_file), "-o", str(index_file)])
        capsys.readouterr()
        rc = main(["check", str(other_file), str(index_file)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "PROBLEM" in out
