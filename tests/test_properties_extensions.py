"""Property-based tests for the extension subsystems.

Mirrors ``test_properties.py`` for the parts the paper left as future
work or related work: ISL substrate, incremental insertions, weighted
SIEF, directed SIEF, and path reconstruction.
"""

from __future__ import annotations

import random
from collections import deque

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    UNREACHED,
    bfs_distance_between,
    bfs_distances,
    dijkstra_distances,
)
from repro.graph.weighted import WeightedGraph
from repro.labeling.dynamic import insert_edge
from repro.labeling.isl import build_isl
from repro.labeling.paths import shortest_path_via_labeling
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.failures.directed import build_directed_sief
from repro.failures.weighted import build_weighted_sief, close

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_vertices=2, max_vertices=14):
    n = draw(st.integers(min_vertices, max_vertices))
    seed = draw(st.integers(0, 2**20))
    density = draw(st.floats(0.15, 0.6))
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < density
    ]
    if not edges:
        edges = [(0, n - 1)]
    return Graph(n, edges)


@st.composite
def digraphs(draw, max_vertices=12):
    n = draw(st.integers(3, max_vertices))
    seed = draw(st.integers(0, 2**20))
    rng = random.Random(seed)
    g = DiGraph(n)
    target_arcs = draw(st.integers(n, 3 * n))
    attempts = 0
    while g.num_arcs < target_arcs and attempts < 20 * target_arcs:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_arc(u, v):
            g.add_arc(u, v)
    return g


@given(g=graphs(), core_limit=st.integers(1, 12))
@settings(max_examples=40, **COMMON)
def test_isl_is_exact_cover_for_any_core_limit(g, core_limit):
    labeling = build_isl(g, core_limit=core_limit)
    assert labeling.validate() == []
    for s in range(g.num_vertices):
        truth = bfs_distances(g, s)
        for t in range(g.num_vertices):
            expected = truth[t] if truth[t] != UNREACHED else INF
            assert dist_query(labeling, s, t) == expected


@given(g=graphs(min_vertices=4), seed=st.integers(0, 1000))
@settings(max_examples=40, **COMMON)
def test_insertion_then_labeling_paths_stay_valid(g, seed):
    """Insert an edge, then reconstruct paths — both features compose."""
    labeling = build_pll(g)
    rng = random.Random(seed)
    candidates = [
        (u, v)
        for u in range(g.num_vertices)
        for v in range(u + 1, g.num_vertices)
        if not g.has_edge(u, v)
    ]
    if candidates:
        insert_edge(g, labeling, *rng.choice(candidates))
    for s in range(0, g.num_vertices, 2):
        for t in range(0, g.num_vertices, 3):
            expected = bfs_distance_between(g, s, t)
            path = shortest_path_via_labeling(g, labeling, s, t)
            if expected == -1:
                assert path is None
            else:
                assert path is not None
                assert len(path) - 1 == expected
                for a, b in zip(path, path[1:]):
                    assert g.has_edge(a, b)


@given(g=graphs(max_vertices=10), seed=st.integers(0, 1000))
@settings(max_examples=25, **COMMON)
def test_weighted_sief_exact_on_random_weights(g, seed):
    rng = random.Random(seed)
    wg = WeightedGraph(g.num_vertices)
    for u, v in g.edges():
        wg.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.5]))
    index = build_weighted_sief(wg)
    for u, v, _w in wg.edges():
        for s in range(wg.num_vertices):
            truth = dijkstra_distances(wg, s, avoid=(u, v))
            for t in range(wg.num_vertices):
                assert close(index.distance(s, t, (u, v)), truth[t]), (
                    (u, v), s, t,
                )


@given(g=digraphs())
@settings(max_examples=25, **COMMON)
def test_directed_sief_exact(g):
    index = build_directed_sief(g)
    n = g.num_vertices
    for arc in g.arcs():
        a, b = arc
        for s in range(n):
            dist = [INF] * n
            dist[s] = 0
            queue = deque((s,))
            while queue:
                x = queue.popleft()
                for y in g.successors(x):
                    if x == a and y == b:
                        continue
                    if dist[y] == INF:
                        dist[y] = dist[x] + 1
                        queue.append(y)
            for t in range(n):
                assert index.distance(s, t, arc) == dist[t], (arc, s, t)
