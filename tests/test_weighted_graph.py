"""Unit tests for WeightedGraph."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, GraphError
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph


def test_add_edge_and_weight_lookup():
    g = WeightedGraph(3, [(0, 1, 2.5)])
    assert g.weight(0, 1) == 2.5
    assert g.weight(1, 0) == 2.5


def test_weight_of_missing_edge_raises():
    g = WeightedGraph(3, [(0, 1, 1.0)])
    with pytest.raises(EdgeNotFound):
        g.weight(0, 2)


def test_nonpositive_weight_rejected():
    g = WeightedGraph(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, 0.0)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, -3.0)


def test_duplicate_and_self_loop_rejected():
    g = WeightedGraph(3, [(0, 1, 1.0)])
    with pytest.raises(GraphError):
        g.add_edge(1, 0, 2.0)
    with pytest.raises(GraphError):
        g.add_edge(2, 2, 1.0)


def test_neighbors_are_pairs_sorted_by_id():
    g = WeightedGraph(4, [(1, 3, 1.0), (1, 0, 2.0), (1, 2, 3.0)])
    assert [n for n, _ in g.neighbors(1)] == [0, 2, 3]


def test_edges_iterate_once_canonical():
    g = WeightedGraph(3, [(2, 0, 1.5), (1, 2, 2.5)])
    assert sorted(g.edges()) == [(0, 2, 1.5), (1, 2, 2.5)]


def test_remove_edge():
    g = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
    g.remove_edge(0, 1)
    assert not g.has_edge(0, 1)
    assert g.num_edges == 1


def test_without_edge_copies():
    g = WeightedGraph(3, [(0, 1, 1.0)])
    h = g.without_edge(0, 1)
    assert g.has_edge(0, 1) and not h.has_edge(0, 1)


def test_round_trip_unweighted():
    base = Graph(4, [(0, 1), (1, 2), (2, 3)])
    lifted = WeightedGraph.from_unweighted(base, weight=2.0)
    assert lifted.weight(1, 2) == 2.0
    assert lifted.to_unweighted() == base


def test_edge_weights_mapping():
    g = WeightedGraph(3, [(0, 1, 1.5), (1, 2, 2.5)])
    assert g.edge_weights() == {(0, 1): 1.5, (1, 2): 2.5}


def test_degree_counts_incident_edges():
    g = WeightedGraph(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
    assert g.degree(0) == 3 and g.degree(3) == 1
