"""Unit tests for VertexOrdering and the ordering strategies."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.order.ordering import VertexOrdering
from repro.order.strategies import (
    STRATEGIES,
    by_closeness_estimate,
    by_degree,
    by_degree_neighborhood,
    identity_order,
    make_ordering,
    random_order,
)


class TestVertexOrdering:
    def test_bijection(self):
        o = VertexOrdering([2, 0, 1])
        assert o.rank(2) == 0 and o.rank(0) == 1 and o.rank(1) == 2
        assert o.vertex(0) == 2 and o.vertex(2) == 1

    def test_iteration_is_rank_order(self):
        o = VertexOrdering([3, 1, 0, 2])
        assert list(o) == [3, 1, 0, 2]
        assert o.sequence() == [3, 1, 0, 2]

    def test_precedes(self):
        o = VertexOrdering([1, 0])
        assert o.precedes(1, 0)
        assert not o.precedes(0, 1)

    def test_ranks_array(self):
        o = VertexOrdering([2, 0, 1])
        assert o.ranks() == [1, 2, 0]

    def test_non_permutation_rejected(self):
        with pytest.raises(ReproError):
            VertexOrdering([0, 0, 1])
        with pytest.raises(ReproError):
            VertexOrdering([0, 3])

    def test_equality(self):
        assert VertexOrdering([1, 0]) == VertexOrdering([1, 0])
        assert VertexOrdering([1, 0]) != VertexOrdering([0, 1])

    def test_len(self):
        assert len(VertexOrdering([0, 1, 2])) == 3


class TestStrategies:
    def test_degree_puts_hub_first(self, star7):
        assert by_degree(star7).vertex(0) == 0

    def test_degree_ties_broken_by_id(self, cycle6):
        assert by_degree(cycle6).sequence() == [0, 1, 2, 3, 4, 5]

    def test_degree_neighborhood_refines_ties(self):
        # Vertices 1 and 3 both have degree 2, but 1's neighbors are
        # higher degree.
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 5)])
        order = by_degree_neighborhood(g)
        assert order.precedes(1, 3)

    def test_closeness_puts_center_early(self):
        g = generators.path_graph(9)
        order = by_closeness_estimate(g, probes=9, seed=0)
        # The path center (4) must precede the endpoints.
        assert order.precedes(4, 0)
        assert order.precedes(4, 8)

    def test_identity(self, path5):
        assert identity_order(path5).sequence() == [0, 1, 2, 3, 4]

    def test_random_is_seeded(self, cycle6):
        a = random_order(cycle6, seed=5)
        b = random_order(cycle6, seed=5)
        c = random_order(cycle6, seed=6)
        assert a == b
        assert a != c

    def test_all_strategies_produce_valid_orderings(self):
        g = generators.erdos_renyi_gnm(20, 40, seed=1)
        for name in STRATEGIES:
            kwargs = {"seed": 0} if name in ("random",) else {}
            order = make_ordering(g, name, **kwargs)
            assert sorted(order.sequence()) == list(range(20))

    def test_make_ordering_unknown_strategy(self, path5):
        with pytest.raises(ReproError, match="unknown ordering strategy"):
            make_ordering(path5, "alphabetical")
