"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph import generators
from repro.graph.components import is_connected
from repro.graph.stats import average_clustering
from repro.graph.validation import validate_graph


def _assert_simple(g):
    assert validate_graph(g) == []


class TestClassics:
    def test_path(self):
        g = generators.path_graph(4)
        assert g.num_edges == 3 and is_connected(g)

    def test_cycle(self):
        g = generators.cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            generators.cycle_graph(2)

    def test_star(self):
        g = generators.star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5

    def test_complete(self):
        g = generators.complete_graph(5)
        assert g.num_edges == 10

    def test_grid(self):
        g = generators.grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_connected(g)

    def test_random_tree(self):
        g = generators.random_tree(30, seed=1)
        assert g.num_edges == 29
        assert is_connected(g)
        _assert_simple(g)


class TestRandomFamilies:
    def test_gnm_exact_edge_count(self):
        g = generators.erdos_renyi_gnm(40, 100, seed=2)
        assert g.num_vertices == 40 and g.num_edges == 100
        _assert_simple(g)

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi_gnm(4, 7)

    def test_gnm_deterministic(self):
        a = generators.erdos_renyi_gnm(30, 60, seed=7)
        b = generators.erdos_renyi_gnm(30, 60, seed=7)
        assert a == b

    def test_gnm_seed_sensitivity(self):
        a = generators.erdos_renyi_gnm(30, 60, seed=7)
        b = generators.erdos_renyi_gnm(30, 60, seed=8)
        assert a != b

    def test_barabasi_albert_sizes(self):
        g = generators.barabasi_albert(50, 3, seed=3)
        # Seed clique C(4,2)=6 edges, then 3 per newcomer.
        assert g.num_edges == 6 + 3 * (50 - 4)
        assert is_connected(g)
        _assert_simple(g)

    def test_barabasi_albert_hubs_exist(self):
        g = generators.barabasi_albert(200, 2, seed=4)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_barabasi_albert_bad_m(self):
        with pytest.raises(GraphError):
            generators.barabasi_albert(5, 5)

    def test_watts_strogatz_degree_and_rewiring(self):
        g0 = generators.watts_strogatz(40, 4, 0.0, seed=5)
        assert g0.num_edges == 40 * 2
        assert all(g0.degree(v) == 4 for v in g0.vertices())
        g1 = generators.watts_strogatz(40, 4, 0.5, seed=5)
        assert g1.num_edges == g0.num_edges  # rewiring preserves m
        assert g1 != g0

    def test_watts_strogatz_validation(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 4, 1.5)  # bad beta

    def test_powerlaw_cluster_has_clustering(self):
        clustered = generators.powerlaw_cluster(150, 4, 0.9, seed=6)
        plain = generators.barabasi_albert(150, 4, seed=6)
        assert average_clustering(clustered) > average_clustering(plain)
        _assert_simple(clustered)

    def test_planted_partition_intra_density(self):
        g = generators.planted_partition(60, 3, 0.8, 0.01, seed=7)
        group = [v % 3 for v in range(60)]
        intra = sum(1 for u, v in g.edges() if group[u] == group[v])
        inter = g.num_edges - intra
        assert intra > 5 * inter
        _assert_simple(g)

    def test_planted_partition_validation(self):
        with pytest.raises(GraphError):
            generators.planted_partition(10, 0, 0.5, 0.1)
        with pytest.raises(GraphError):
            generators.planted_partition(10, 2, 1.5, 0.1)

    def test_preferential_rewired_keeps_simple(self):
        g = generators.preferential_rewired(100, 300, 0.3, seed=8)
        _assert_simple(g)
        assert g.num_edges == 300

    def test_attach_tail(self):
        core = generators.cycle_graph(10)
        g = generators.attach_tail(core, 5, seed=9)
        assert g.num_vertices == 15
        assert g.num_edges == 15
        assert all(g.degree(v) == 1 for v in range(10, 15))

    def test_compose_disjoint(self):
        g = generators.compose_disjoint(
            [generators.path_graph(3), generators.cycle_graph(4)]
        )
        assert g.num_vertices == 7
        assert g.num_edges == 2 + 4
        assert not is_connected(g)
