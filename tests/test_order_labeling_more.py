"""Additional ordering/labeling interaction tests.

These probe the relationships the reproduction leans on: how ordering
quality shapes label and supplement sizes, and subtle Labeling behaviors
not covered by the structural tests.
"""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import dist_query
from repro.labeling.stats import labeling_stats
from repro.order.strategies import by_degree, identity_order, random_order
from repro.core.builder import SIEFBuilder


class TestOrderingEffects:
    def test_hub_graph_degree_order_gives_near_star_labels(self, star7):
        labeling = build_pll(star7, by_degree(star7))
        # Every leaf: exactly {(center, 1), (self, 0)}.
        for leaf in range(1, 7):
            assert labeling.label_size(leaf) == 2

    def test_bad_order_on_star_blows_up(self, star7):
        # Put the center LAST: leaves can't use it as a hub.
        order = identity_order(star7)
        seq = order.sequence()
        seq.remove(0)
        seq.append(0)
        from repro.order.ordering import VertexOrdering

        labeling = build_pll(star7, VertexOrdering(seq))
        good = build_pll(star7, by_degree(star7))
        assert labeling.total_entries() > good.total_entries()
        # Still exact, just bigger.
        from repro.labeling.verify import verify_labeling

        verify_labeling(labeling, star7)

    def test_supplement_sizes_track_ordering_quality(self):
        g = generators.barabasi_albert(60, 3, seed=40)
        edges = list(g.edges())[:30]
        good = build_pll(g, by_degree(g))
        bad = build_pll(g, random_order(g, seed=40))
        index_good, _ = SIEFBuilder(g, good).build(edges=edges)
        index_bad, _ = SIEFBuilder(g, bad).build(edges=edges)
        # Not a theorem, but holds robustly on hubby graphs: a better
        # ordering shrinks the original labels...
        assert good.total_entries() < bad.total_entries()
        # ...and both indexes answer identically (exactness regardless).
        from repro.core.query import SIEFQueryEngine

        eg, eb = SIEFQueryEngine(index_good), SIEFQueryEngine(index_bad)
        for edge in edges[:10]:
            for s in range(0, 60, 11):
                for t in range(0, 60, 13):
                    assert eg.distance(s, t, edge) == eb.distance(
                        s, t, edge
                    )


class TestLabelingMisc:
    def test_stats_of_empty_graph(self):
        from repro.graph.graph import Graph

        labeling = build_pll(Graph(0))
        stats = labeling_stats(labeling)
        assert stats.total_entries == 0
        assert stats.avg_entries == 0.0

    def test_iter_raw_covers_all_vertices(self, paper_labeling):
        seen = [v for v, _r, _d in paper_labeling.iter_raw()]
        assert seen == list(range(11))

    def test_query_uses_min_over_multiple_hubs(self):
        # Construct a case where the first common hub is NOT the best.
        g = generators.cycle_graph(8)
        g.add_edge(0, 4)
        labeling = build_pll(g, identity_order(g))
        from repro.graph.traversal import bfs_distances

        truth = bfs_distances(g, 2)
        for t in range(8):
            assert dist_query(labeling, 2, t) == truth[t]

    def test_entries_sorted_by_rank_for_every_strategy(self):
        g = generators.erdos_renyi_gnm(25, 50, seed=41)
        for make in (by_degree, identity_order):
            labeling = build_pll(g, make(g))
            for _v, ranks, _d in labeling.iter_raw():
                assert all(
                    ranks[i] < ranks[i + 1] for i in range(len(ranks) - 1)
                )
