"""Unit tests for the parallel SIEF builder."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexError_
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.core.builder import SIEFBuilder
from repro.core.parallel import _chunks, build_sief_parallel


@pytest.fixture(scope="module")
def setup():
    g = generators.erdos_renyi_gnm(24, 44, seed=23)
    return g, build_pll(g)


class TestParallelBuild:
    def test_identical_to_serial(self, setup):
        g, labeling = setup
        serial, _ = SIEFBuilder(g, labeling).build()
        parallel, _ = build_sief_parallel(g, labeling, workers=2)
        assert parallel.num_cases == serial.num_cases
        for edge, si in serial.iter_cases():
            assert parallel.supplement(*edge) == si

    def test_single_worker_runs_inline(self, setup):
        g, labeling = setup
        index, report = build_sief_parallel(g, labeling, workers=1)
        assert index.num_cases == g.num_edges
        assert report.num_cases == g.num_edges

    def test_edge_subset(self, setup):
        g, labeling = setup
        edges = list(g.edges())[:5]
        index, report = build_sief_parallel(
            g, labeling, workers=2, edges=edges
        )
        assert index.num_cases == 5
        assert [r.edge for r in report.records] == sorted(edges)

    def test_report_records_sorted_and_complete(self, setup):
        g, labeling = setup
        _, report = build_sief_parallel(g, labeling, workers=2)
        edges = [r.edge for r in report.records]
        assert edges == sorted(edges)
        assert report.total_supplemental_entries >= 0
        assert report.identify_seconds > 0

    def test_builds_labeling_when_missing(self):
        g = generators.cycle_graph(8)
        index, _ = build_sief_parallel(g, workers=1)
        assert index.num_cases == 8

    def test_bfs_aff_algorithm(self, setup):
        g, labeling = setup
        serial, _ = SIEFBuilder(g, labeling, algorithm="bfs_aff").build()
        parallel, _ = build_sief_parallel(
            g, labeling, algorithm="bfs_aff", workers=2
        )
        for edge, si in serial.iter_cases():
            assert parallel.supplement(*edge) == si

    def test_unknown_algorithm_rejected(self, setup):
        g, labeling = setup
        with pytest.raises(IndexError_):
            build_sief_parallel(g, labeling, algorithm="dfs")


def test_chunks_cover_everything():
    items = [(i, i + 1) for i in range(13)]
    chunks = _chunks(items, 4)
    flat = [e for chunk in chunks for e in chunk]
    assert flat == items
    assert all(chunks)


def test_chunks_single():
    assert _chunks([(0, 1)], 8) == [[(0, 1)]]


def test_chunks_balanced():
    """Chunk sizes differ by at most one — no worker idles on a stub."""
    for n_items in range(0, 40):
        items = [(i, i + 1) for i in range(n_items)]
        for count in range(1, 12):
            chunks = _chunks(items, count)
            # partition invariant
            assert [e for c in chunks for e in c] == items
            # no empty chunks, never more than `count` of them
            assert all(chunks)
            assert len(chunks) <= count
            if chunks:
                sizes = [len(c) for c in chunks]
                assert max(sizes) - min(sizes) <= 1


def test_chunks_empty():
    assert _chunks([], 4) == []
