"""Unit tests for GraphBuilder (messy edge-list ingestion)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder


def test_names_map_to_dense_ids():
    b = GraphBuilder()
    b.add_edge("alice", "bob")
    b.add_edge("bob", "carol")
    assert b.num_vertices == 3
    assert b.names() == ["alice", "bob", "carol"]


def test_duplicates_dropped_and_counted():
    b = GraphBuilder()
    b.add_edge(1, 2)
    b.add_edge(2, 1)
    b.add_edge(1, 2)
    assert b.num_edges == 1
    assert b.duplicates_dropped == 2


def test_self_loops_dropped_and_counted():
    b = GraphBuilder()
    b.add_edge("x", "x")
    assert b.num_edges == 0
    assert b.self_loops_dropped == 1
    # Vertex still allocated.
    assert b.num_vertices == 1


def test_build_produces_clean_graph():
    b = GraphBuilder()
    b.add_edges([(10, 20), (20, 30), (10, 20), (30, 30)])
    g = b.build()
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_isolated_vertex_via_add_vertex():
    b = GraphBuilder()
    b.add_edge("a", "b")
    b.add_vertex("lonely")
    g = b.build()
    assert g.num_vertices == 3
    assert g.degree(2) == 0


def test_build_weighted_first_weight_wins():
    b = GraphBuilder()
    b.add_edge("a", "b", weight=3.0)
    b.add_edge("b", "a", weight=9.0)  # duplicate: dropped
    g = b.build_weighted()
    assert g.weight(0, 1) == 3.0


def test_build_weighted_default_weight():
    b = GraphBuilder()
    b.add_edge("a", "b")
    g = b.build_weighted(default_weight=2.5)
    assert g.weight(0, 1) == 2.5


def test_bad_weight_rejected():
    b = GraphBuilder()
    with pytest.raises(GraphError):
        b.add_edge("a", "b", weight=-1.0)


def test_vertex_id_stable():
    b = GraphBuilder()
    first = b.vertex_id("v")
    second = b.vertex_id("v")
    assert first == second == 0
