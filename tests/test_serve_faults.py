"""Fault injection against the serving layer: it answers, never crashes.

Every test here throws something hostile at a live server — malformed
JSON, truncated binary frames, oversized bodies, slow handlers, raising
handlers, a full queue, SIGTERM mid-request — and asserts the failure
contract: the right status code comes back, the connection is not
leaked, and the *next* request still succeeds.  The micro-batcher's
flush policy (size vs deadline vs drain) is pinned down at the unit
level with a fake clockless engine.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.serve.batcher import LoadShedError, MicroBatcher
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.inprocess import InProcessServer
from repro.serve.protocol import BINARY_MAGIC, encode_batch_request
from repro.serve.server import ServeConfig


@pytest.fixture(scope="module")
def engine() -> SIEFQueryEngine:
    graph = generators.erdos_renyi_gnm(24, 44, seed=9)
    index, _ = SIEFBuilder(graph).build()
    return SIEFQueryEngine(index.freeze())


@pytest.fixture(scope="module")
def an_edge(engine):
    return sorted(engine.index.supplements)[0]


# ---------------------------------------------------------------------------
# malformed input -> 400, connection stays usable
# ---------------------------------------------------------------------------


MALFORMED_JSON = [
    b"{not json at all",
    b"",
    b"[1, 2, 3]",
    b'{"s": "zero", "t": 1, "edge": [0, 1]}',
    b'{"s": 0, "t": 1}',
    b'{"s": 0, "t": 1, "edge": [0]}',
    b'{"s": 0, "t": 1, "edge": ["a", "b"]}',
    b'{"s": true, "t": 1, "edge": [0, 1]}',
]


@pytest.mark.parametrize("body", MALFORMED_JSON)
def test_malformed_json_is_400(engine, an_edge, body):
    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, payload = client.request("POST", "/dist", body)
        assert status == 400
        assert "error" in json.loads(payload)
        # server is still alive and correct afterwards
        client2 = ServeClient(srv.host, srv.port)
        u, v = an_edge
        assert client2.distance(u, v, an_edge) >= 1


MALFORMED_FRAMES = [
    b"",
    b"SFB",
    b"XXXX" + b"\x00" * 12,
    BINARY_MAGIC + b"\x00" * 4,  # truncated header
    encode_batch_request((0, 1), [(0, 1)])[:-3],  # truncated pairs
    encode_batch_request((0, 1), [(0, 1)]) + b"extra",  # trailing junk
    BINARY_MAGIC + (0).to_bytes(4, "little") * 2 + (2**22 + 1).to_bytes(4, "little"),
]


@pytest.mark.parametrize("frame", MALFORMED_FRAMES)
def test_malformed_binary_is_400(engine, an_edge, frame):
    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, payload = client.request(
            "POST", "/batch.bin", frame, content_type="application/octet-stream"
        )
        assert status == 400
        assert "error" in json.loads(payload)
        client2 = ServeClient(srv.host, srv.port)
        out = client2.batch_binary(an_edge, [(0, 1), (2, 3)])
        assert len(out) == 2


def test_garbled_request_line_is_400_and_close(engine):
    with InProcessServer(engine) as srv:
        with socket.create_connection((srv.host, srv.port), timeout=5) as s:
            s.sendall(b"\x00\x01\x02 garbage\r\n\r\n")
            data = s.recv(4096)
            assert b"400" in data.split(b"\r\n", 1)[0]
        # next connection unaffected
        client = ServeClient(srv.host, srv.port)
        assert client.healthz()["status"] == "ok"


def test_oversized_body_is_413(engine):
    config = ServeConfig(max_body=1024)
    with InProcessServer(engine, config) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, _ = client.request("POST", "/batch", b"x" * 2048)
        assert status == 413
        client2 = ServeClient(srv.host, srv.port)
        assert client2.healthz()["status"] == "ok"


def test_unknown_route_and_method(engine):
    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, _ = client.request("GET", "/nope")
        assert status == 404
        status, headers, _ = client.request("GET", "/dist")
        assert status == 405
        assert headers.get("allow") == "POST"
        status, _, _ = client.request("POST", "/healthz", b"{}")
        assert status == 405


def test_unknown_failure_case_is_404(engine):
    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        with pytest.raises(ServeClientError) as exc:
            client.distance(0, 1, (998, 999))
        assert exc.value.status == 404


def test_out_of_range_vertex_is_client_error(engine, an_edge):
    with InProcessServer(engine) as srv:
        client = ServeClient(srv.host, srv.port)
        with pytest.raises(ServeClientError) as exc:
            client.batch(an_edge, [(0, 10_000)])
        assert 400 <= exc.value.status < 500


# ---------------------------------------------------------------------------
# injected handler faults
# ---------------------------------------------------------------------------


def test_slow_handler_times_out_with_504(engine, an_edge):
    async def stall(path):
        if path == "/dist":
            await asyncio.sleep(5)

    config = ServeConfig(request_timeout=0.2, fault_hook=stall)
    with InProcessServer(engine, config) as srv:
        client = ServeClient(srv.host, srv.port)
        t0 = time.monotonic()
        with pytest.raises(ServeClientError) as exc:
            client.distance(0, 1, an_edge)
        assert exc.value.status == 504
        assert time.monotonic() - t0 < 3
        # non-stalled routes still work on a fresh connection
        client2 = ServeClient(srv.host, srv.port)
        assert client2.healthz()["status"] == "ok"
        assert srv.registry.counter_value("serve.timeouts") >= 1


def test_raising_handler_is_500_then_recovers(engine, an_edge):
    calls = {"n": 0}

    def explode(path):
        calls["n"] += 1
        if path == "/healthz" and calls["n"] == 1:
            raise RuntimeError("injected handler crash")

    # RuntimeError maps to 503 (drain signal); anything else to 500 —
    # inject a non-Runtime error to hit the generic 500 path too.
    def explode_value(path):
        if path == "/failures":
            raise ArithmeticError("injected")

    config = ServeConfig(fault_hook=explode)
    with InProcessServer(engine, config) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, payload = client.request("GET", "/healthz")
        assert status == 503  # RuntimeError -> drain mapping
        assert "injected" in json.loads(payload)["error"]
        # second call does not raise; same connection still works
        status, _, _ = client.request("GET", "/healthz")
        assert status == 200

    config = ServeConfig(fault_hook=explode_value)
    with InProcessServer(engine, config) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, payload = client.request("GET", "/failures")
        assert status == 500
        assert "injected" in json.loads(payload)["error"]
        assert client.healthz()["status"] == "ok"
        assert srv.registry.counter_value("serve.errors") >= 1


def test_engine_fault_surfaces_without_killing_batcher(an_edge):
    class FlakyEngine:
        def __init__(self, real):
            self.real = real
            self.calls = 0

        @property
        def index(self):
            return self.real.index

        def batch_query(self, edge, pairs):
            self.calls += 1
            if self.calls == 1:
                raise ArithmeticError("transient engine fault")
            return self.real.batch_query(edge, pairs)

    graph = generators.erdos_renyi_gnm(24, 44, seed=9)
    index, _ = SIEFBuilder(graph).build()
    flaky = FlakyEngine(SIEFQueryEngine(index.freeze()))
    with InProcessServer(flaky) as srv:
        client = ServeClient(srv.host, srv.port)
        status, _, _ = client.request(
            "POST",
            "/batch",
            json.dumps({"edge": list(an_edge), "pairs": [[0, 1]]}).encode(),
        )
        assert status == 500
        # the batcher survived; the retry answers
        assert client.batch(an_edge, [(0, 1)])[0] >= 0


# ---------------------------------------------------------------------------
# load shedding
# ---------------------------------------------------------------------------


def test_load_shed_429_with_retry_after(engine, an_edge):
    config = ServeConfig(queue_limit=4, max_delay=0.01)
    with InProcessServer(engine, config) as srv:
        client = ServeClient(srv.host, srv.port)
        # a batch bigger than the whole queue can never be admitted
        with pytest.raises(ServeClientError) as exc:
            client.batch(an_edge, [(0, 1)] * 10)
        assert exc.value.status == 429
        assert exc.value.retry_after is not None
        # within capacity still works
        assert len(client.batch(an_edge, [(0, 1)] * 4)) == 4
        assert srv.registry.counter_value("serve.queue.shed") >= 1


# ---------------------------------------------------------------------------
# micro-batcher flush policy (unit level, deterministic)
# ---------------------------------------------------------------------------


class CountingEngine:
    """batch_query = original pair sums; counts calls for assertions."""

    def __init__(self):
        self.calls = []

    def batch_query(self, edge, pairs):
        pairs = np.asarray(pairs)
        self.calls.append((tuple(edge), len(pairs)))
        return pairs.sum(axis=1).astype(np.float64)


def run(coro):
    return asyncio.run(coro)


def test_flush_on_size_fires_before_deadline():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=4, max_delay=30.0)
        b.start()
        t0 = time.monotonic()
        futs = [b.submit((0, 1), np.array([[i, i]])) for i in range(4)]
        out = await asyncio.gather(*futs)
        assert time.monotonic() - t0 < 5, "size flush must not wait for deadline"
        assert [float(o[0]) for o in out] == [0.0, 2.0, 4.0, 6.0]
        assert b.registry.counter_value("serve.batch.flush_size") == 1
        assert b.registry.counter_value("serve.batch.flush_deadline") == 0
        assert eng.calls == [((0, 1), 4)]
        await b.close()

    run(main())


def test_flush_on_deadline_fires_below_size():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=1000, max_delay=0.05)
        b.start()
        t0 = time.monotonic()
        out = await b.submit((0, 1), np.array([[2, 3]]))
        elapsed = time.monotonic() - t0
        assert float(out[0]) == 5.0
        assert elapsed >= 0.04, f"deadline flush came too early ({elapsed}s)"
        assert b.registry.counter_value("serve.batch.flush_deadline") == 1
        assert b.registry.counter_value("serve.batch.flush_size") == 0
        await b.close()

    run(main())


def test_boundary_exactly_max_batch_is_size_flush():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=3, max_delay=30.0)
        b.start()
        f1 = b.submit((0, 1), np.array([[1, 1], [2, 2]]))  # 2 pairs
        f2 = b.submit((0, 1), np.array([[3, 3]]))  # 3rd pair -> size
        await asyncio.gather(f1, f2)
        assert b.registry.counter_value("serve.batch.flush_size") == 1
        await b.close()

    run(main())


def test_one_oversize_item_still_flushes():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=2, max_delay=30.0, queue_limit=100)
        b.start()
        out = await b.submit((0, 1), np.array([[i, i] for i in range(7)]))
        assert len(out) == 7
        assert eng.calls == [((0, 1), 7)]
        await b.close()

    run(main())


def test_groups_by_edge_one_engine_call_each():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=6, max_delay=30.0)
        b.start()
        futs = [
            b.submit((0, 1), np.array([[1, 1]])),
            b.submit((2, 3), np.array([[2, 2]])),
            b.submit((0, 1), np.array([[3, 3], [4, 4]])),
            b.submit((2, 3), np.array([[5, 5], [6, 6]])),
        ]
        out = await asyncio.gather(*futs)
        assert [list(map(float, o)) for o in out] == [
            [2.0],
            [4.0],
            [6.0, 8.0],
            [10.0, 12.0],
        ]
        assert sorted(eng.calls) == [((0, 1), 3), ((2, 3), 3)]
        await b.close()

    run(main())


def test_shed_raises_and_queue_recovers():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=100, max_delay=0.02, queue_limit=3)
        b.start()
        f1 = b.submit((0, 1), np.array([[1, 1], [2, 2]]))
        with pytest.raises(LoadShedError):
            b.submit((0, 1), np.array([[3, 3], [4, 4]]))
        await f1  # deadline flush empties the queue
        out = await b.submit((0, 1), np.array([[3, 3], [4, 4]]))
        assert len(out) == 2
        await b.close()

    run(main())


def test_close_drains_pending_items():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=1000, max_delay=30.0)
        b.start()
        fut = b.submit((0, 1), np.array([[4, 5]]))
        await b.close()  # drain flush, not the 30s deadline
        assert float((await fut)[0]) == 9.0
        assert b.registry.counter_value("serve.batch.flush_drain") == 1
        with pytest.raises(RuntimeError):
            b.submit((0, 1), np.array([[1, 1]]))

    run(main())


def test_cancelled_future_is_skipped():
    async def main():
        eng = CountingEngine()
        b = MicroBatcher(eng, max_batch=1000, max_delay=0.02)
        b.start()
        f1 = b.submit((0, 1), np.array([[1, 1]]))
        f2 = b.submit((0, 1), np.array([[2, 2]]))
        f1.cancel()
        assert float((await f2)[0]) == 4.0
        assert f1.cancelled()
        await b.close()

    run(main())


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


def test_inprocess_drain_completes_inflight_request(engine, an_edge):
    """stop() while a request is queued: the request is answered, not cut."""
    config = ServeConfig(max_delay=0.4, max_batch=10_000)
    srv = InProcessServer(engine, config)
    result = {}

    def worker():
        client = ServeClient(srv.host, srv.port)
        result["answer"] = client.distance(an_edge[0], an_edge[1], an_edge)

    t = threading.Thread(target=worker)
    t.start()
    time.sleep(0.1)  # request is sitting in the micro-batch queue
    srv.stop()
    t.join(timeout=10)
    assert not t.is_alive()
    assert result["answer"] >= 1


def test_sigterm_graceful_drain_subprocess(engine, an_edge, tmp_path):
    """The real daemon: SIGTERM mid-request -> request completes, exit 0."""
    store = tmp_path / "idx.npz"
    engine.index.save_npz(store)
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(store),
            "--port",
            "0",
            "--max-delay",
            "0.4",
            "--max-batch",
            "100000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd="/root/repo",
    )
    try:
        line = proc.stdout.readline().strip()
        m = re.match(r"serving on ([\d.]+):(\d+)", line)
        assert m, f"unexpected startup line: {line!r}"
        host, port = m.group(1), int(m.group(2))
        result = {}

        def worker():
            client = ServeClient(host, port, timeout=10)
            result["answer"] = client.batch(an_edge, [(0, 1), (2, 3)])

        t = threading.Thread(target=worker)
        t.start()
        time.sleep(0.1)  # in the micro-batch window
        proc.send_signal(signal.SIGTERM)
        t.join(timeout=15)
        rc = proc.wait(timeout=15)
        assert rc == 0, f"daemon exited {rc}"
        assert not t.is_alive()
        assert len(result["answer"]) == 2
        # a post-drain connection must be refused, not hang
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)
    finally:
        if proc.poll() is None:
            proc.kill()


def test_drain_rejects_new_queries_with_503(engine, an_edge):
    """After the batcher closes, an already-open connection gets 503."""

    async def main():
        from repro.serve.server import SIEFServer

        server = SIEFServer(engine, ServeConfig())
        await server.start()
        reader, writer = await asyncio.open_connection(server.host, server.port)
        # Drain with no in-flight work; the listener closes.  A request
        # written on the surviving (idle -> closed) connection fails at
        # the socket level rather than hanging.
        await server.drain()
        body = json.dumps(
            {"s": 0, "t": 1, "edge": [an_edge[0], an_edge[1]]}
        ).encode()
        writer.write(
            b"POST /dist HTTP/1.1\r\nHost: x\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        try:
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), timeout=5)
            assert data == b"" or b"503" in data
        except ConnectionError:
            pass  # equally acceptable: the drain closed the socket
        finally:
            writer.close()

    run(main())
