"""Bit-identity of the batched construction path with the scalar one.

The batched relabel must produce *exactly* the supplemental index the
scalar algorithms produce — same labels, same ``(rank, dist)`` entries,
same order — and the vectorized IDENTIFY must return exactly the scalar
affected sides.  These are property tests over random graphs; the fuzz
harness (``sief-batched-build`` adapter) extends the same check to the
whole differential corpus.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affected import (
    affected_by_definition,
    identify_affected,
    identify_affected_csr,
)
from repro.core.batched import build_supplemental_batched
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.builder import SIEFBuilder
from repro.core.lazy import LazySIEFIndex
from repro.exceptions import EdgeNotFound
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm
from repro.labeling.pll import build_pll


def _graph(seed: int, max_n: int = 36):
    import random

    rng = random.Random(seed)
    n = rng.randint(4, max_n)
    m = rng.randint(n - 1, min(n * (n - 1) // 2, 3 * n))
    g = erdos_renyi_gnm(n, m, seed=seed)
    if g.num_edges == 0:
        g.add_edge(0, 1)
    return g


seeds = st.integers(min_value=0, max_value=10_000)


class TestIdentifyParity:
    @settings(max_examples=50, deadline=None)
    @given(seeds, seeds)
    def test_csr_identify_equals_scalar(self, seed, pick):
        g = _graph(seed)
        csr = CSRGraph.from_graph(g)
        edges = sorted(g.edges())
        u, v = edges[pick % len(edges)]
        scalar = identify_affected(g, u, v)
        vectorized = identify_affected_csr(csr, u, v)
        assert vectorized == scalar
        assert all(isinstance(x, int) for x in vectorized.side_u)

    @settings(max_examples=25, deadline=None)
    @given(seeds, seeds)
    def test_csr_identify_matches_definition(self, seed, pick):
        g = _graph(seed, max_n=20)
        csr = CSRGraph.from_graph(g)
        edges = sorted(g.edges())
        u, v = edges[pick % len(edges)]
        got = identify_affected_csr(csr, u, v)
        side_u, side_v = affected_by_definition(g, u, v)
        assert list(got.side_u) == sorted(side_u)
        assert list(got.side_v) == sorted(side_v)

    def test_missing_edge_raises_edge_not_found(self):
        g = erdos_renyi_gnm(8, 10, seed=0)
        csr = CSRGraph.from_graph(g)
        missing = next(
            (a, b)
            for a in range(8)
            for b in range(8)
            if a != b and not g.has_edge(a, b)
        )
        with pytest.raises(EdgeNotFound):
            identify_affected_csr(csr, *missing)


def _assert_bit_identical(si_a, si_b):
    assert si_a == si_b
    assert set(si_a.labels) == set(si_b.labels)
    for t, sl in si_a.labels.items():
        other = si_b.labels[t]
        assert sl.ranks == other.ranks
        assert sl.dists == other.dists


class TestRelabelParity:
    @settings(max_examples=40, deadline=None)
    @given(seeds, seeds)
    def test_batched_equals_both_scalar_algorithms(self, seed, pick):
        g = _graph(seed)
        labeling = build_pll(g)
        csr = CSRGraph.from_graph(g)
        edges = sorted(g.edges())
        u, v = edges[pick % len(edges)]
        affected = identify_affected(g, u, v)
        batched = build_supplemental_batched(
            g, labeling, affected, csr=csr
        )
        aff = build_supplemental_bfs_aff(g, labeling, affected)
        all_ = build_supplemental_bfs_all(g, labeling, affected)
        _assert_bit_identical(batched, aff)
        _assert_bit_identical(batched, all_)

    @settings(max_examples=12, deadline=None)
    @given(seeds)
    def test_full_build_parity(self, seed):
        g = _graph(seed, max_n=24)
        labeling = build_pll(g)
        idx_batched, rep_batched = SIEFBuilder(g, labeling, "batched").build()
        idx_scalar, rep_scalar = SIEFBuilder(g, labeling, "bfs_all").build()
        assert set(idx_batched.supplements) == set(idx_scalar.supplements)
        for edge, si in idx_batched.supplements.items():
            _assert_bit_identical(si, idx_scalar.supplements[edge])
        assert rep_batched.num_cases == rep_scalar.num_cases
        assert (
            rep_batched.total_supplemental_entries
            == rep_scalar.total_supplemental_entries
        )

    def test_build_case_routes_through_csr(self):
        g = barabasi_albert(80, 3, seed=2)
        labeling = build_pll(g)
        b = SIEFBuilder(g, labeling, "batched")
        ref = SIEFBuilder(g, labeling, "bfs_aff")
        for u, v in sorted(g.edges())[:12]:
            si, record = b.build_case(u, v)
            si_ref, _ = ref.build_case(u, v)
            _assert_bit_identical(si, si_ref)
            assert record.edge == (u, v)

    def test_disconnected_bridge_yields_empty_index(self):
        # A path graph: every edge is a bridge.
        from repro.graph.generators import path_graph

        g = path_graph(6)
        labeling = build_pll(g)
        csr = CSRGraph.from_graph(g)
        affected = identify_affected(g, 2, 3)
        assert affected.disconnected
        si = build_supplemental_batched(g, labeling, affected, csr=csr)
        assert si.total_entries() == 0


class TestLazyBatched:
    def test_lazy_batched_matches_lazy_scalar(self):
        g = erdos_renyi_gnm(30, 70, seed=5)
        lazy_b = LazySIEFIndex(g.copy(), build_pll(g), algorithm="batched")
        lazy_s = LazySIEFIndex(g.copy(), build_pll(g), algorithm="bfs_all")
        for edge in sorted(g.edges())[:10]:
            for s, t in [(0, 29), (3, 17), (11, 22)]:
                assert lazy_b.distance(s, t, edge) == lazy_s.distance(
                    s, t, edge
                )
        assert lazy_b.cases_built == lazy_s.cases_built

    def test_mutation_invalidates_csr_snapshot(self):
        g = erdos_renyi_gnm(20, 40, seed=6)
        lazy = LazySIEFIndex(g.copy(), build_pll(g), algorithm="batched")
        edge = sorted(lazy.graph.edges())[0]
        lazy.distance(0, 19, edge)
        assert lazy._csr_cache is not None
        # Insertion must drop the snapshot (the CSR no longer matches).
        a, b = next(
            (a, b)
            for a in range(20)
            for b in range(20)
            if a != b and not lazy.graph.has_edge(a, b)
        )
        lazy.insert_edge(a, b)
        assert lazy._csr_cache is None
        edge2 = sorted(lazy.graph.edges())[1]
        d = lazy.distance(1, 18, edge2)
        # Cross-check against a fresh scalar lazy index on the same graph.
        ref = LazySIEFIndex(
            lazy.graph.copy(), build_pll(lazy.graph), algorithm="bfs_all"
        )
        assert d == ref.distance(1, 18, edge2)
        # Permanent deletion also drops it.
        lazy.distance(0, 19, sorted(lazy.graph.edges())[0])
        u, v = sorted(lazy.graph.edges())[-1]
        lazy.commit_failure(u, v)
        assert lazy._csr_cache is None
