"""Tests for the ``sief top`` dashboard: windowed rates and the CLI."""

from __future__ import annotations

import io
import math

from repro.cli import main
from repro.obs.export import parse_prometheus_text, to_prometheus_text
from repro.obs.metrics import MetricsRegistry, REQUEST_LATENCY_EDGES
from repro.serve.top import _histogram_window, render_frame, run_top


def _scrape(requests: int, latencies=(), batch_pairs=()) -> str:
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(requests)
    reg.gauge("serve.up").set(1)
    reg.gauge("serve.queue.depth").set(0)
    reg.gauge("serve.requests_inflight").set(1)
    reg.gauge("serve.connections").set(3)
    reg.gauge("process.peak_rss_bytes").set(256e6)
    reg.gauge("serve.events.emitted").set(requests)
    h = reg.histogram("serve.request.seconds", REQUEST_LATENCY_EDGES)
    for v in latencies:
        h.observe(v)
    b = reg.histogram("serve.batch.size", edges=(1, 10, 100))
    for v in batch_pairs:
        b.observe(v)
    return to_prometheus_text(reg)


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


def test_histogram_window_is_a_delta():
    prev = {"edges": [1.0], "counts": [2, 0], "sum": 1.0, "count": 2}
    cur = {"edges": [1.0], "counts": [5, 1], "sum": 4.0, "count": 6}
    window = _histogram_window(cur, prev)
    assert window == {"edges": [1.0], "counts": [3, 1], "sum": 3.0, "count": 4}
    # changed edges (server restarted with different buckets): fall back
    assert _histogram_window(cur, {"edges": [9.9], "counts": [0, 0]}) == cur
    assert _histogram_window(None, prev) is None


def test_render_frame_shows_windowed_rates():
    prev = parse_prometheus_text(_scrape(100, latencies=[0.002] * 10))
    cur = parse_prometheus_text(
        _scrape(300, latencies=[0.002] * 10 + [0.004] * 100, batch_pairs=[8])
    )
    frame = render_frame(cur, prev, dt=2.0)
    assert "qps      100.0" in frame  # (300-100)/2
    # windowed p50 sits in the (0.0025, 0.005] bucket, not the lifetime one
    assert "p50" in frame and "ms" in frame
    assert "requests total 300" in frame
    assert "events" in frame
    assert "rss     256MB" in frame


def test_render_frame_first_scrape_has_zero_rates():
    cur = parse_prometheus_text(_scrape(500))
    frame = render_frame(cur, cur, dt=2.0)
    assert "qps        0.0" in frame
    assert "p50        -" in frame  # no window yet
    assert "requests total 500" in frame


def test_run_top_polls_and_renders_count_frames():
    scrapes = iter([_scrape(100), _scrape(300)])
    out = io.StringIO()
    sleeps = []
    clock = FakeClock()

    def sleep(dt):
        sleeps.append(dt)
        clock.t += dt

    rc = run_top(
        fetch=lambda: next(scrapes),
        interval=2.0,
        count=2,
        plain=True,
        out=out,
        clock=clock,
        sleep=sleep,
    )
    assert rc == 0
    assert sleeps == [2.0]  # no sleep before the first frame
    frames = out.getvalue().split("---\n")
    assert len([f for f in frames if f.strip()]) == 2
    assert "qps        0.0" in frames[0]
    assert "qps      100.0" in frames[1]
    assert "\x1b" not in out.getvalue()  # --plain never emits ANSI


def test_run_top_clears_screen_without_plain():
    out = io.StringIO()
    rc = run_top(
        fetch=lambda: _scrape(1),
        count=1,
        plain=False,
        out=out,
        clock=FakeClock(),
        sleep=lambda dt: None,
    )
    assert rc == 0
    assert out.getvalue().startswith("\x1b[H\x1b[2J")


def test_run_top_scrape_failure_exits_nonzero(capsys):
    def failing_fetch():
        raise ConnectionError("nobody home")

    rc = run_top(fetch=failing_fetch, count=3, plain=True, out=io.StringIO())
    assert rc == 1
    assert "scrape failed" in capsys.readouterr().err


def test_run_top_stops_cleanly_on_interrupt():
    def interrupted_fetch():
        raise KeyboardInterrupt

    assert run_top(fetch=interrupted_fetch, plain=True, out=io.StringIO()) == 0


def test_cli_top_rejects_bad_target(capsys):
    assert main(["top", "no-port-here"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_cli_top_unreachable_server_exits_one(capsys):
    # port 1 is privileged and unbound in the test container
    assert main(["top", "127.0.0.1:1", "--count", "1", "--plain"]) == 1
    assert "scrape failed" in capsys.readouterr().err
