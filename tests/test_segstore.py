"""Segment-store round-trip and corruption coverage (ISSUE 9).

The out-of-core store must (a) rebuild an index bit-identical to the
in-RAM build and (b) refuse — with a clear :class:`StoreError` — to
answer from a store whose TOC and segment file disagree.  A corrupt
store must never produce a wrong distance; it must raise.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.builder import build_sief
from repro.core.index import SIEFIndex
from repro.core.segstore import (
    SEGMENTS_FILE,
    TOC_FILE,
    SegmentStore,
    SegmentWriter,
    build_sief_sharded,
)
from repro.core.serialize import index_to_bytes
from repro.exceptions import FailureCaseNotIndexed, StoreError
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.order.strategies import by_degree


@pytest.fixture
def graph():
    return generators.erdos_renyi_gnm(40, 90, seed=11)


@pytest.fixture
def store_path(graph, tmp_path) -> Path:
    path, _report = build_sief_sharded(graph, tmp_path / "store", shard_size=7)
    return path


class TestRoundTrip:
    def test_rebuilt_index_is_bit_identical(self, graph, store_path):
        reference = build_sief(graph, build_pll(graph, by_degree(graph)))
        rebuilt = SegmentStore(store_path).to_index()
        assert index_to_bytes(rebuilt) == index_to_bytes(reference)

    def test_index_load_routes_siefseg_paths(self, graph, store_path):
        reference = build_sief(graph, build_pll(graph, by_degree(graph)))
        loaded = SIEFIndex.load(store_path)
        assert index_to_bytes(loaded) == index_to_bytes(reference)

    def test_unknown_edge_raises_not_indexed(self, store_path):
        store = SegmentStore(store_path)
        with pytest.raises(FailureCaseNotIndexed):
            store.load_case(998, 999)

    def test_case_edges_are_sorted_and_complete(self, graph, store_path):
        store = SegmentStore(store_path)
        assert store.case_edges() == sorted(graph.edges())
        assert store.num_cases == graph.num_edges

    def test_writer_rejects_out_of_order_appends(self, graph, tmp_path):
        labeling = build_pll(graph, by_degree(graph))
        index = build_sief(graph, labeling)
        cases = sorted(index.supplements.items())
        with SegmentWriter(tmp_path / "disordered", labeling) as writer:
            writer.append_case(*cases[1])
            with pytest.raises(StoreError):
                writer.append_case(*cases[0])


def _retoc(path: Path, **overrides) -> None:
    """Rewrite toc.npz with some arrays tampered."""
    toc = dict(np.load(path / TOC_FILE))
    toc.update(overrides)
    np.savez(path / TOC_FILE, **toc)


class TestCorruption:
    def test_truncated_segment_file_is_rejected_at_open(self, store_path):
        seg = store_path / SEGMENTS_FILE
        data = seg.read_bytes()
        seg.write_bytes(data[: len(data) - 16])
        with pytest.raises(StoreError, match="segment"):
            SegmentStore(store_path)

    def test_record_past_eof_is_rejected_at_load(self, store_path):
        toc = dict(np.load(store_path / TOC_FILE))
        offsets = toc["case_offsets"].copy()
        offsets[-1] += int(toc["case_lengths"][-1])
        _retoc(store_path, case_offsets=offsets)
        store = SegmentStore(store_path)
        u, v = store.case_edges()[-1]
        with pytest.raises(StoreError, match="past the end"):
            store.load_case(u, v)

    def test_offset_length_mismatch_is_rejected_at_load(self, store_path):
        toc = dict(np.load(store_path / TOC_FILE))
        lengths = toc["case_lengths"].copy()
        lengths[0] -= 8
        _retoc(store_path, case_lengths=lengths)
        store = SegmentStore(store_path)
        u, v = store.case_edges()[0]
        with pytest.raises(StoreError, match="corrupt record"):
            store.load_case(u, v)

    def test_toc_segment_edge_mismatch_is_rejected(self, store_path):
        edges = dict(np.load(store_path / TOC_FILE))["case_edges"].copy()
        keys = dict(np.load(store_path / TOC_FILE))["case_keys"].copy()
        # Swap the last edge's identity in the TOC only; the segment
        # record still carries the true edge and must contradict it.
        edges[-1] = (4000, 4001)
        keys[-1] = np.uint64((4000 << 32) | 4001)
        _retoc(store_path, case_edges=edges, case_keys=keys)
        store = SegmentStore(store_path)
        with pytest.raises(StoreError, match="mismatch"):
            store.load_case(4000, 4001)

    def test_missing_toc_is_rejected(self, store_path):
        (store_path / TOC_FILE).unlink()
        with pytest.raises(StoreError):
            SegmentStore(store_path)

    def test_wrong_format_version_is_rejected(self, store_path):
        _retoc(store_path, format_version=np.int64(99))
        with pytest.raises(StoreError, match="version"):
            SegmentStore(store_path)
