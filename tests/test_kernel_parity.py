"""Bit-identity of the accelerated kernel tier against pure numpy.

Every compiled kernel must return byte-for-byte what the numpy tier
returns: BFS distance vectors, bit-parallel settlement counts,
supplemental ``(rank, dist)`` streams in append order, hub-join minima,
and serialized index bytes.  These direct parity sweeps complement the
differential fuzz adapters (``sief-batch-kernels``,
``sief-kernels-build``) with deterministic, seed-pinned instances, and
additionally check that observability — metric counters and profiler
span attribution — stays identical when a compiled kernel takes over a
hot path.

The whole module skips when no accelerated backend is available (no
numba, no C compiler): there is then nothing to compare.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import kernels
from repro.core.builder import build_sief
from repro.core.query import SIEFQueryEngine
from repro.core.serialize import index_to_bytes
from repro.graph.csr import CSRGraph
from repro.graph.frontier import (
    bfs_bitparallel_csr,
    bfs_distances_csr,
    edge_positions,
)
from repro.graph.graph import Graph
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import batch_dist_query
from repro.obs import TraceRecorder, hooks as _obs_hooks
from repro.order.strategies import by_degree

with kernels.use_tier("auto"):
    ACCEL = kernels.effective_tier()

pytestmark = pytest.mark.skipif(
    ACCEL == "numpy",
    reason="no accelerated kernel backend available on this host",
)


def _random_graph(rng: random.Random, n: int) -> Graph:
    m = rng.randint(n - 1, min(3 * n, n * (n - 1) // 2))
    seen = set()
    while len(seen) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            seen.add((min(u, v), max(u, v)))
    return Graph(n, sorted(seen))


# ---------------------------------------------------------------------------
# single-source BFS
# ---------------------------------------------------------------------------


def test_bfs_kernel_matches_numpy_sweep():
    rng = random.Random(1)
    for _ in range(25):
        g = _random_graph(rng, rng.randint(4, 40))
        csr = CSRGraph.from_graph(g)
        source = rng.randrange(g.num_vertices)
        avoid = None
        if g.num_edges:
            u, v = rng.choice(list(g.edges()))
            avoid = edge_positions(csr.indptr, csr.indices, u, v)
        allowed = None
        if rng.random() < 0.5:
            allowed = np.zeros(g.num_vertices, dtype=bool)
            allowed[
                rng.sample(
                    range(g.num_vertices), rng.randint(1, g.num_vertices)
                )
            ] = True
        with kernels.use_tier("numpy"):
            want = bfs_distances_csr(
                csr.indptr, csr.indices, source, avoid, allowed
            )
        with kernels.use_tier(ACCEL):
            got = bfs_distances_csr(
                csr.indptr, csr.indices, source, avoid, allowed
            )
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# bit-parallel sweep
# ---------------------------------------------------------------------------


def test_bitparallel_kernel_matches_numpy_sweep():
    rng = random.Random(2)
    for _ in range(25):
        g = _random_graph(rng, rng.randint(4, 40))
        csr = CSRGraph.from_graph(g)
        n = g.num_vertices
        k = rng.randint(1, min(64, n))
        roots = [rng.randrange(n) for _ in range(k)]
        edges = list(g.edges())
        mode = rng.randrange(3)
        if mode == 0:
            avoid = None
        elif mode == 1:  # one shared pair, every lane
            u, v = rng.choice(edges)
            avoid = edge_positions(csr.indptr, csr.indices, u, v)
        else:  # one pair per root, some lanes unmasked
            avoid = []
            for _ in range(k):
                if rng.random() < 0.3:
                    avoid.append(None)
                else:
                    u, v = rng.choice(edges)
                    avoid.append(
                        edge_positions(csr.indptr, csr.indices, u, v)
                    )
        needed = None
        if rng.random() < 0.5:
            needed = np.array(
                [rng.getrandbits(k) for _ in range(n)], dtype=np.uint64
            )
        with kernels.use_tier("numpy"):
            want, want_settled = bfs_bitparallel_csr(
                csr.indptr, csr.indices, roots, avoid, needed
            )
        with kernels.use_tier(ACCEL):
            got, got_settled = bfs_bitparallel_csr(
                csr.indptr, csr.indices, roots, avoid, needed
            )
        np.testing.assert_array_equal(got, want)
        assert got_settled == want_settled


# ---------------------------------------------------------------------------
# whole-pass RELABEL and the end-to-end batched build
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "make_graph",
    [
        lambda: generators.erdos_renyi_gnm(60, 150, seed=5),
        lambda: generators.barabasi_albert(80, 2, seed=6),
        lambda: generators.watts_strogatz(64, 4, 0.2, seed=7),
    ],
    ids=["er", "ba", "ws"],
)
def test_batched_build_bit_identical_across_tiers(make_graph):
    g = make_graph()
    with kernels.use_tier("numpy"):
        ref = build_sief(g, algorithm="batched")
    with kernels.use_tier(ACCEL):
        acc = build_sief(g, algorithm="batched")
    assert set(acc.supplements) == set(ref.supplements)
    for edge, ref_si in ref.supplements.items():
        acc_si = acc.supplements[edge]
        assert acc_si == ref_si
        # Stronger than index equality: the shared-sweep settlement
        # counter must match too (the kernel replays the same batches,
        # dead lanes included).
        assert acc_si.search_expanded == ref_si.search_expanded
    assert index_to_bytes(acc) == index_to_bytes(ref)


def test_batched_build_answers_match_scalar_reference():
    g = generators.erdos_renyi_gnm(40, 90, seed=8)
    with kernels.use_tier(ACCEL):
        index = build_sief(g, algorithm="batched")
    scalar = build_sief(g, algorithm="bfs_all")
    engine = SIEFQueryEngine(index)
    ref_engine = SIEFQueryEngine(scalar)
    rng = random.Random(9)
    for u, v in index.supplements:
        for _ in range(20):
            s, t = rng.randrange(40), rng.randrange(40)
            assert engine.distance(s, t, (u, v)) == ref_engine.distance(
                s, t, (u, v)
            )


# ---------------------------------------------------------------------------
# hub join
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.int32, np.int64, np.float64])
def test_hub_join_kernel_matches_numpy(dtype):
    g = generators.erdos_renyi_gnm(80, 200, seed=10)
    labeling = build_pll(g, by_degree(g))
    labeling.freeze()
    if dtype != np.int32:
        labeling.dists_flat = labeling.dists_flat.astype(dtype)
    rng = random.Random(11)
    pairs = [
        (rng.randrange(80), rng.randrange(80)) for _ in range(500)
    ]
    # include identity and (likely) disconnected-free pairs
    pairs[:3] = [(0, 0), (5, 5), (79, 79)]
    with kernels.use_tier("numpy"):
        want = batch_dist_query(labeling, pairs)
    with kernels.use_tier(ACCEL):
        got = batch_dist_query(labeling, pairs)
    want_arr = np.asarray(want, dtype=np.float64)
    got_arr = np.asarray(got, dtype=np.float64)
    # bitwise equality, infinities included
    np.testing.assert_array_equal(got_arr, want_arr)


def test_hub_join_disconnected_pairs_stay_infinite():
    g = Graph(6, [(0, 1), (1, 2), (3, 4)])  # vertex 5 isolated
    labeling = build_pll(g, by_degree(g))
    labeling.freeze()
    pairs = [(0, 3), (2, 4), (0, 5), (5, 5), (1, 2)]
    with kernels.use_tier("numpy"):
        want = batch_dist_query(labeling, pairs)
    with kernels.use_tier(ACCEL):
        got = batch_dist_query(labeling, pairs)
    assert list(got) == list(want)
    assert got[0] == float("inf") and got[2] == float("inf")
    assert got[3] == 0.0


# ---------------------------------------------------------------------------
# observability parity: counters and profiler span attribution
# ---------------------------------------------------------------------------


def _span_names_and_counters(tier):
    g = generators.erdos_renyi_gnm(40, 100, seed=12)
    with kernels.use_tier(tier):
        tracer = TraceRecorder(capacity=4096)
        with _obs_hooks.installed(trace=tracer) as reg:
            index = build_sief(g, algorithm="batched")
            engine = SIEFQueryEngine(index)
            edge = next(iter(index.supplements))
            engine.batch_query(edge, [(i, (i + 7) % 40) for i in range(40)])
        spans = {r.name for r in tracer.records()}
        counters = {
            name: c.value
            for name, c in reg.counters.items()
            if not name.startswith("kernels.")
        }
    return spans, counters


def test_profiler_span_attribution_identical_across_tiers():
    """The same spans (and shared counters) fire no matter the tier.

    A compiled kernel swallowing a hot loop must not swallow its
    telemetry: profiles taken on different tiers have to attribute time
    to the same span names, and every tier-independent counter must
    advance identically.  Only the ``kernels.<name>.<tier>`` counters —
    which exist precisely to tell tiers apart — may differ.
    """
    numpy_spans, numpy_counters = _span_names_and_counters("numpy")
    accel_spans, accel_counters = _span_names_and_counters(ACCEL)
    assert accel_spans == numpy_spans
    assert "label.query.batch" in accel_spans
    assert "sief.build" in accel_spans
    for name in ("bfs.vectorized_runs", "sief.relabel.batched_cases"):
        assert accel_counters.get(name) == numpy_counters.get(name)


def test_kernel_tier_counters_tag_the_active_tier():
    g = generators.erdos_renyi_gnm(30, 70, seed=13)
    with kernels.use_tier(ACCEL):
        with _obs_hooks.installed() as reg:
            build_sief(g, algorithm="batched")
        tagged = [
            name
            for name in reg.counters
            if name.startswith("kernels.") and name.endswith(f".{ACCEL}")
        ]
    assert tagged  # the accelerated tier leaves its fingerprint
