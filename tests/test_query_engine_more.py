"""Additional query-engine behavior tests (case taxonomy, round trips)."""

from __future__ import annotations

import random

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.labeling.query import INF
from repro.core.builder import SIEFBuilder
from repro.core.query import QueryCase, SIEFQueryEngine
from repro.core.serialize import index_from_bytes, index_to_bytes


@pytest.fixture(scope="module")
def engine_pair():
    g = generators.erdos_renyi_gnm(22, 40, seed=33)
    index, _ = SIEFBuilder(g).build()
    return g, SIEFQueryEngine(index)


class TestCaseTaxonomy:
    def test_every_query_gets_exactly_one_case(self, engine_pair):
        g, engine = engine_pair
        seen = set()
        for edge in list(g.edges())[:10]:
            for s in range(0, 22, 3):
                for t in range(0, 22, 4):
                    _d, case = engine.distance_with_case(s, t, edge)
                    assert isinstance(case, QueryCase)
                    seen.add(case)
        # A random graph workload must exercise several cases.
        assert QueryCase.UNAFFECTED_PAIR in seen
        assert QueryCase.CROSS_SIDES in seen

    def test_fast_path_agrees_with_case_path(self, engine_pair):
        g, engine = engine_pair
        rng = random.Random(0)
        edges = list(g.edges())
        for _ in range(300):
            s, t = rng.randrange(22), rng.randrange(22)
            edge = rng.choice(edges)
            assert engine.distance(s, t, edge) == (
                engine.distance_with_case(s, t, edge)[0]
            )

    def test_bridge_cross_query_is_case4_inf(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        engine = SIEFQueryEngine(index)
        d, case = engine.distance_with_case(1, 4, (2, 3))
        assert case is QueryCase.CROSS_SIDES
        assert d == INF

    def test_case2_includes_disconnected_component_pairs(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        # 0 is affected by failing (0,1); 3 sits in another component.
        d, case = engine.distance_with_case(0, 3, (0, 1))
        assert d == INF
        assert case in (QueryCase.ONE_AFFECTED, QueryCase.UNAFFECTED_PAIR)


class TestRoundTripBehavior:
    def test_serialized_engine_identical_answers(self, engine_pair):
        g, engine = engine_pair
        loaded = SIEFQueryEngine(
            index_from_bytes(index_to_bytes(engine.index))
        )
        rng = random.Random(1)
        edges = list(g.edges())
        for _ in range(200):
            s, t = rng.randrange(22), rng.randrange(22)
            edge = rng.choice(edges)
            assert loaded.distance(s, t, edge) == engine.distance(
                s, t, edge
            )

    def test_engine_shares_index(self, engine_pair):
        _g, engine = engine_pair
        other = SIEFQueryEngine(engine.index)
        assert other.index is engine.index


class TestSelfLoopsAndIdentity:
    def test_distance_to_self_always_zero(self, engine_pair):
        g, engine = engine_pair
        for edge in list(g.edges())[:5]:
            for v in range(g.num_vertices):
                assert engine.distance(v, v, edge) == 0

    def test_failed_edge_endpoints_query(self, engine_pair):
        g, engine = engine_pair
        from repro.graph.traversal import UNREACHED, bfs_distance_between

        for u, v in list(g.edges())[:10]:
            expected = bfs_distance_between(g, u, v, avoid=(u, v))
            expected = expected if expected != UNREACHED else INF
            assert engine.distance(u, v, (u, v)) == expected
            assert engine.distance(u, v, (u, v)) >= 2 or expected == INF
