"""Every worked example from the paper, reproduced exactly.

These tests pin the implementation to the paper's own numbers: Table 1's
labeling, the Lemma walk-throughs of §3.3, the affected-vertex cases of
Figure 2, the supplemental construction of Figures 3/4, and the §4.4
query example.
"""

from __future__ import annotations

import pytest

from tests.conftest import PAPER_TABLE1

from repro.core.affected import identify_affected
from repro.core.bfs_aff import build_supplemental_bfs_aff
from repro.core.bfs_all import build_supplemental_bfs_all
from repro.core.builder import SIEFBuilder
from repro.core.query import QueryCase, SIEFQueryEngine
from repro.labeling.label import Labeling
from repro.labeling.prune import find_redundant_entries
from repro.labeling.query import dist_query
from repro.labeling.verify import verify_labeling
from repro.order.strategies import identity_order


def test_table1_reproduced_exactly(paper_graph, paper_labeling):
    """PLL with the identity order yields precisely Table 1."""
    for v, expected in PAPER_TABLE1.items():
        entries = [(e.hub, e.distance) for e in paper_labeling.entries(v)]
        assert entries == expected, f"L({v}) mismatch"


def test_table1_is_distance_cover(paper_graph, paper_labeling):
    verify_labeling(paper_labeling, paper_graph)


def test_section32_l5_hub_universe(paper_labeling):
    """§3.2: label entries in L(5) only contain vertices 0, 1, 2 and 5."""
    assert paper_labeling.hubs(5) == [0, 1, 2, 5]


def test_lemma2_example_vertex2_between_5_and_6(paper_labeling):
    """§3.3: dist(5,6)=3 decomposes as dist(5,2)+dist(2,6)=1+2."""
    assert dist_query(paper_labeling, 5, 6) == 3
    assert dist_query(paper_labeling, 5, 2) == 1
    assert dist_query(paper_labeling, 2, 6) == 2


def test_lemma3_example_vertex0_between_1_and_6(paper_labeling):
    """§3.3: min-order vertex 0 appears in both L(1) and L(6); 1+2=3."""
    l1 = {e.hub: e.distance for e in paper_labeling.entries(1)}
    l6 = {e.hub: e.distance for e in paper_labeling.entries(6)}
    assert l1[0] == 1 and l6[0] == 2
    assert dist_query(paper_labeling, 1, 6) == 3


def test_lemma4_example_entry_3_2_in_l5_is_redundant(paper_graph):
    """§3.3: if (3,2) were present in L(5), Lemma 4 flags it.

    Table 1 omits the entry; we inject it and check the detector.
    """
    labeling = Labeling(
        ordering=identity_order(paper_graph),
        hub_ranks=[[h for h, _ in PAPER_TABLE1[v]] for v in range(11)],
        hub_dists=[[d for _, d in PAPER_TABLE1[v]] for v in range(11)],
    )
    # Inject (3, 2) into L(5), keeping ranks ascending: hubs 0,1,2,3,5.
    labeling.hub_ranks[5] = [0, 1, 2, 3, 5]
    labeling.hub_dists[5] = [2, 1, 1, 2, 0]
    redundant = find_redundant_entries(labeling)
    assert (5, 3, 2) in redundant


def test_figure2_case_a_affected_sets(paper_graph):
    """Failed edge (0,8): AV(0) = {0, 2}, AV(8) = {8}."""
    av = identify_affected(paper_graph, 0, 8)
    assert av.side_u == (0, 2)
    assert av.side_v == (8,)
    assert not av.disconnected


def test_figure2_case_b_affected_sets(paper_graph):
    """Failed edge (6,9): the graph splits; AV(9) = {9, 10}."""
    av = identify_affected(paper_graph, 6, 9)
    assert av.side_u == (0, 1, 2, 3, 4, 5, 6, 7, 8)
    assert av.side_v == (9, 10)
    assert av.disconnected


def test_figure3_supplemental_index_for_edge_0_8(paper_graph, paper_labeling):
    """BFS AFF on failed edge (0,8): SL(8) = {(0,2)}, SL(0)=SL(2)=empty."""
    av = identify_affected(paper_graph, 0, 8)
    si = build_supplemental_bfs_aff(paper_graph, paper_labeling, av)
    labels = {w: sl.pairs() for w, sl in si.iter_labels()}
    assert labels == {8: [(0, 2)]}


def test_figure4_bfs_all_matches_figure3(paper_graph, paper_labeling):
    """BFS ALL produces the identical supplemental index."""
    av = identify_affected(paper_graph, 0, 8)
    aff = build_supplemental_bfs_aff(paper_graph, paper_labeling, av)
    all_ = build_supplemental_bfs_all(paper_graph, paper_labeling, av)
    assert aff == all_


def test_section44_query_example(paper_graph, paper_labeling):
    """§4.4: d_{G'}(2, 8) = 1 + 2 = 3 via SL(8)={(0,2)} and L(2)."""
    index, _report = SIEFBuilder(
        paper_graph, paper_labeling, algorithm="bfs_all"
    ).build()
    engine = SIEFQueryEngine(index)
    distance, case = engine.distance_with_case(2, 8, (0, 8))
    assert distance == 3
    assert case is QueryCase.CROSS_SIDES


def test_intro_compactness_claim(paper_graph, paper_labeling):
    """§1's pitch in miniature: SIEF total entries are far below m copies
    of the original labeling (the naive method's footprint)."""
    index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
    naive_entries = paper_graph.num_edges * paper_labeling.total_entries()
    sief_entries = (
        paper_labeling.total_entries() + index.total_supplemental_entries()
    )
    assert sief_entries < naive_entries / 4
