"""Unit tests for the SIEF query engine (§4.4 Cases 1–4)."""

from __future__ import annotations

import pytest

from repro.exceptions import FailureCaseNotIndexed
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.pll import build_pll
from repro.labeling.query import INF
from repro.core.builder import SIEFBuilder
from repro.core.query import QueryCase, SIEFQueryEngine


def exhaustive_check(g, engine):
    """Compare every (failed edge, s, t) against BFS ground truth."""
    n = g.num_vertices
    for u, v in g.edges():
        for s in range(n):
            truth = bfs_distances_avoiding_edge(g, s, (u, v))
            for t in range(n):
                expected = truth[t] if truth[t] != UNREACHED else INF
                got = engine.distance(s, t, (u, v))
                assert got == expected, ((u, v), s, t)


class TestExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_exhaustive(self, seed):
        g = generators.erdos_renyi_gnm(20, 34, seed=seed)
        index, _ = SIEFBuilder(g).build()
        exhaustive_check(g, SIEFQueryEngine(index))

    def test_paper_graph_exhaustive(self, paper_graph, paper_labeling):
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        exhaustive_check(paper_graph, SIEFQueryEngine(index))

    def test_tree_all_failures_disconnect(self):
        g = generators.random_tree(16, seed=2)
        index, _ = SIEFBuilder(g).build()
        exhaustive_check(g, SIEFQueryEngine(index))

    def test_cycle(self, cycle6):
        index, _ = SIEFBuilder(cycle6).build()
        engine = SIEFQueryEngine(index)
        assert engine.distance(0, 1, (0, 1)) == 5
        assert engine.distance(0, 3, (0, 1)) == 3

    def test_dense_graph(self):
        g = generators.complete_graph(8)
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        # In a clique, losing one edge forces a 2-hop detour for its
        # endpoints only.
        assert engine.distance(0, 1, (0, 1)) == 2
        assert engine.distance(0, 2, (0, 1)) == 1


class TestCases:
    @pytest.fixture
    def engine(self, paper_graph, paper_labeling):
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        return SIEFQueryEngine(index)

    def test_case1_unaffected_pair(self, engine):
        # Edge (0,8): affected = {0, 2} | {8}; 5 and 7 are untouched.
        d, case = engine.distance_with_case(5, 7, (0, 8))
        assert case is QueryCase.UNAFFECTED_PAIR
        assert d == 3

    def test_case2_one_affected(self, engine):
        d, case = engine.distance_with_case(2, 5, (0, 8))
        assert case is QueryCase.ONE_AFFECTED
        assert d == 1

    def test_case3_same_side(self, engine):
        d, case = engine.distance_with_case(0, 2, (0, 8))
        assert case is QueryCase.SAME_SIDE
        assert d == 1

    def test_case4_cross_sides(self, engine):
        d, case = engine.distance_with_case(0, 8, (0, 8))
        assert case is QueryCase.CROSS_SIDES
        assert d == 2  # 0-4-8 or 0-... around

    def test_case4_disconnection_returns_inf(
        self, paper_graph, paper_labeling
    ):
        index, _ = SIEFBuilder(paper_graph, paper_labeling).build()
        engine = SIEFQueryEngine(index)
        d, case = engine.distance_with_case(0, 10, (6, 9))
        assert case is QueryCase.CROSS_SIDES
        assert d == INF

    def test_unknown_failure_case_raises(self, engine):
        with pytest.raises(FailureCaseNotIndexed):
            engine.distance(0, 1, (0, 9))

    def test_symmetry(self, engine, paper_graph):
        for u, v in paper_graph.edges():
            for s in range(11):
                for t in range(11):
                    assert engine.distance(s, t, (u, v)) == engine.distance(
                        t, s, (u, v)
                    )

    def test_failed_edge_order_irrelevant(self, engine):
        assert engine.distance(0, 8, (0, 8)) == engine.distance(0, 8, (8, 0))

    def test_query_same_vertex(self, engine):
        assert engine.distance(4, 4, (0, 8)) == 0
