"""Round-trip tests for the weighted/directed index serializers."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SerializationError
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.weighted import WeightedGraph
from repro.failures.directed import build_directed_sief
from repro.failures.serialize import (
    directed_index_from_json,
    directed_index_to_json,
    load_directed_index,
    load_weighted_index,
    save_directed_index,
    save_weighted_index,
    weighted_index_from_json,
    weighted_index_to_json,
)
from repro.failures.weighted import build_weighted_sief


@pytest.fixture(scope="module")
def weighted_index():
    rng = random.Random(60)
    base = generators.erdos_renyi_gnm(14, 26, seed=60)
    wg = WeightedGraph(14)
    for u, v in base.edges():
        wg.add_edge(u, v, rng.choice([0.5, 1.0, 2.25]))
    return wg, build_weighted_sief(wg)


@pytest.fixture(scope="module")
def directed_index():
    rng = random.Random(61)
    g = DiGraph(12)
    while g.num_arcs < 30:
        u, v = rng.randrange(12), rng.randrange(12)
        if u != v and not g.has_arc(u, v):
            g.add_arc(u, v)
    return g, build_directed_sief(g)


class TestWeightedRoundTrip:
    def test_answers_preserved(self, weighted_index):
        wg, index = weighted_index
        loaded = weighted_index_from_json(weighted_index_to_json(index))
        rng = random.Random(0)
        edges = [e[:2] for e in wg.edges()]
        for _ in range(200):
            s, t = rng.randrange(14), rng.randrange(14)
            e = rng.choice(edges)
            assert loaded.distance(s, t, e) == index.distance(s, t, e)

    def test_float_weights_exact(self, weighted_index):
        _wg, index = weighted_index
        loaded = weighted_index_from_json(weighted_index_to_json(index))
        for edge, si in index.supplements.items():
            other = loaded.supplement(*edge)
            for t, sl in si.iter_labels():
                assert other.get(t).dists == sl.dists

    def test_file_round_trip(self, weighted_index, tmp_path):
        _wg, index = weighted_index
        path = tmp_path / "weighted.sief.json"
        save_weighted_index(index, path)
        loaded = load_weighted_index(path)
        assert len(loaded.supplements) == len(index.supplements)

    def test_kind_mismatch_rejected(self, directed_index):
        _g, d_index = directed_index
        with pytest.raises(SerializationError, match="expected"):
            weighted_index_from_json(directed_index_to_json(d_index))

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            weighted_index_from_json("{}")
        with pytest.raises(SerializationError):
            weighted_index_from_json("not json")


class TestDirectedRoundTrip:
    def test_answers_preserved(self, directed_index):
        g, index = directed_index
        loaded = directed_index_from_json(directed_index_to_json(index))
        rng = random.Random(1)
        arcs = list(g.arcs())
        for _ in range(200):
            s, t = rng.randrange(12), rng.randrange(12)
            arc = rng.choice(arcs)
            assert loaded.distance(s, t, arc) == index.distance(s, t, arc)

    def test_affected_sides_preserved(self, directed_index):
        _g, index = directed_index
        loaded = directed_index_from_json(directed_index_to_json(index))
        for arc, si in index.supplements.items():
            other = loaded.supplement(*arc)
            assert other.affected.side_s == si.affected.side_s
            assert other.affected.side_t == si.affected.side_t
            assert other.affected.disconnected == si.affected.disconnected

    def test_file_round_trip(self, directed_index, tmp_path):
        _g, index = directed_index
        path = tmp_path / "directed.sief.json"
        save_directed_index(index, path)
        loaded = load_directed_index(path)
        assert len(loaded.supplements) == len(index.supplements)

    def test_kind_mismatch_rejected(self, weighted_index):
        _wg, w_index = weighted_index
        with pytest.raises(SerializationError, match="expected"):
            directed_index_from_json(weighted_index_to_json(w_index))
