"""Shared-memory parallel build: parity and segment-lifecycle guarantees.

The invariants under test:

* shm-transport builds are bit-identical to pickle-transport and serial
  builds, for both scalar and batched relabel algorithms;
* no ``/dev/shm`` segment survives a build — on success, on a worker
  exception, or on ``SIGINT`` delivered mid-build (the last via a real
  subprocess harness, since signal delivery into a live pool cannot be
  faked in-process).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import parallel as parallel_mod
from repro.core.builder import SIEFBuilder
from repro.core.parallel import build_sief_parallel
from repro.core.shm import (
    SharedArena,
    attach_build_inputs,
    list_segments,
    publish_build_inputs,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm
from repro.labeling.pll import build_pll

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _assert_no_new_segments(before):
    leftover = [s for s in list_segments() if s not in before]
    assert leftover == [], f"leaked shared-memory segments: {leftover}"


class TestArena:
    def test_publish_attach_roundtrip(self):
        before = list_segments()
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.asarray([3, 1, 4], dtype=np.int32),
            "c": np.asarray([2.5, -1.0], dtype=np.float64),
        }
        arena = SharedArena.publish(arrays)
        try:
            assert arena.name in list_segments()
            borrowed = SharedArena.attach(arena.spec())
            views = borrowed.arrays()
            for key, arr in arrays.items():
                assert views[key].dtype == arr.dtype
                assert np.array_equal(views[key], arr)
                assert not views[key].flags.writeable
            borrowed.close()
        finally:
            arena.close()
            arena.unlink()
        _assert_no_new_segments(before)

    def test_context_manager_cleans_up(self):
        before = list_segments()
        with SharedArena.publish({"x": np.ones(4, dtype=np.int32)}) as arena:
            assert arena.name in list_segments()
        _assert_no_new_segments(before)

    def test_publish_requires_frozen_labeling(self):
        g = erdos_renyi_gnm(10, 15, seed=0)
        labeling = build_pll(g)
        labeling.thaw()
        with pytest.raises(ValueError):
            publish_build_inputs(CSRGraph.from_graph(g), labeling)

    def test_build_inputs_roundtrip_zero_copy(self):
        g = erdos_renyi_gnm(25, 60, seed=1)
        labeling = build_pll(g)
        labeling.freeze()
        csr = CSRGraph.from_graph(g)
        before = list_segments()
        arena = publish_build_inputs(csr, labeling)
        try:
            borrowed, csr2, lab2 = attach_build_inputs(arena.spec())
            assert csr2 == csr
            assert lab2.frozen
            assert np.array_equal(lab2.offsets, labeling.offsets)
            assert np.array_equal(lab2.hubs_flat, labeling.hubs_flat)
            assert np.array_equal(lab2.dists_flat, labeling.dists_flat)
            assert (
                lab2.ordering.vertex_array().tolist()
                == labeling.ordering.vertex_array().tolist()
            )
            borrowed.close()
        finally:
            arena.close()
            arena.unlink()
        _assert_no_new_segments(before)


@pytest.mark.parametrize("algorithm", ["bfs_all", "batched"])
def test_shm_pickle_serial_bit_identical(algorithm):
    g = barabasi_albert(150, 3, seed=4)
    edges = sorted(g.edges())[:30]
    before = list_segments()
    serial, _ = SIEFBuilder(g, build_pll(g), "bfs_all").build(edges=edges)
    shm, _ = build_sief_parallel(
        g,
        build_pll(g),
        algorithm=algorithm,
        workers=2,
        edges=edges,
        shared_memory=True,
    )
    pickled, _ = build_sief_parallel(
        g,
        build_pll(g),
        algorithm=algorithm,
        workers=2,
        edges=edges,
        shared_memory=False,
    )
    assert set(serial.supplements) == set(shm.supplements) == set(
        pickled.supplements
    )
    for edge, si in serial.supplements.items():
        for other in (shm.supplements[edge], pickled.supplements[edge]):
            assert si == other
            for t, sl in si.labels.items():
                assert sl.ranks == other.labels[t].ranks
                assert sl.dists == other.labels[t].dists
    _assert_no_new_segments(before)


def test_shm_metrics_flow_to_parent():
    from repro.obs import MetricsRegistry, TraceRecorder, installed

    g = barabasi_albert(80, 2, seed=7)
    registry = MetricsRegistry()
    recorder = TraceRecorder(capacity=64)
    with installed(registry, recorder):
        build_sief_parallel(
            g,
            build_pll(g),
            workers=2,
            edges=sorted(g.edges())[:8],
            shared_memory=True,
        )
    counters = registry.snapshot()["counters"]
    assert counters.get("sief.shm.segments_published") == 1
    assert counters.get("sief.shm.worker_attaches", 0) >= 1
    assert counters.get("sief.build.cases") == 8


def test_no_leak_when_worker_raises(monkeypatch):
    g = barabasi_albert(60, 2, seed=5)
    labeling = build_pll(g)
    before = list_segments()

    def boom(*args, **kwargs):
        raise RuntimeError("injected worker failure")

    # Fork workers inherit the patched module state, so every chunk dies.
    monkeypatch.setattr(parallel_mod, "build_one_case", boom)
    with pytest.raises(RuntimeError, match="injected worker failure"):
        build_sief_parallel(
            g, labeling, workers=2, shared_memory=True
        )
    _assert_no_new_segments(before)


_SIGINT_CHILD = """\
import sys
sys.path.insert(0, {src!r})
from repro.graph.generators import barabasi_albert
from repro.labeling.pll import build_pll
from repro.core.parallel import build_sief_parallel

g = barabasi_albert(400, 2, seed=11)
labeling = build_pll(g)
build_sief_parallel(g, labeling, algorithm="bfs_all", workers=2,
                    shared_memory=True)
print("BUILD-FINISHED", flush=True)
"""


def test_no_leak_on_parent_sigint(tmp_path):
    """SIGINT mid-build: the publisher's finally still unlinks."""
    script = tmp_path / "child.py"
    script.write_text(_SIGINT_CHILD.format(src=SRC), encoding="utf-8")
    child = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    prefix = f"sief-{child.pid}-"
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if any(s.startswith(prefix) for s in list_segments()):
                break
            if child.poll() is not None:
                pytest.fail(
                    "child exited before publishing a segment: "
                    + child.stderr.read()
                )
            time.sleep(0.05)
        else:
            pytest.fail("child never published a shared-memory segment")
        child.send_signal(signal.SIGINT)
        out, err = child.communicate(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.communicate()
    assert "BUILD-FINISHED" not in out, "SIGINT landed after the build"
    assert child.returncode != 0
    leftover = [s for s in list_segments() if s.startswith(prefix)]
    assert leftover == [], f"segments leaked after SIGINT: {leftover}"
