"""Lint: the metric catalog in docs/observability.md matches the code.

Every metric the library registers must appear in the catalog tables,
and every catalog row must correspond to a real registration site —
both directions, so the docs can't silently drift as instrumentation
is added or renamed.

Names are compared in a canonical form where both the docs' ``<angle>``
placeholders and the code's ``{fstring}`` placeholders become ``*``
(one name segment), so ``serve.http.<status>`` pairs with
``f"serve.http.{status}"`` and the documented literal
``serve.batch.flush_size`` pairs with ``f"serve.batch.flush_{cause}"``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOC = REPO / "docs" / "observability.md"
SRC = REPO / "src" / "repro"

# | `name.one` / `name.two` | counter | meaning ... |
_ROW_RE = re.compile(
    r"^\|(?P<names>[^|]+)\|\s*(?P<type>counter|gauge|histogram)\s*\|"
)
# reg.counter("name") / reg.histogram(\n    "name", EDGES) / f-strings
_REG_RE = re.compile(r'\b(counter|gauge|histogram)\(\s*f?"([^"]+)"')

_PLACEHOLDER_SEGMENT = r"[A-Za-z0-9_]+"


def _canonical(name: str) -> str:
    name = re.sub(r"<[^<>]+>", "*", name)
    name = re.sub(r"\{[^{}]*\}", "*", name)
    return name


def _covers(pattern: str, name: str) -> bool:
    """Does canonical ``pattern`` describe canonical ``name``?

    Either side may carry ``*`` placeholders; a literal on one side
    must fit the other side's placeholders.
    """
    if pattern == name:
        return True
    regex = re.compile(
        "^"
        + _PLACEHOLDER_SEGMENT.join(re.escape(p) for p in pattern.split("*"))
        + "$"
    )
    return regex.match(name.replace("*", "x")) is not None


def _matches(a: str, b: str) -> bool:
    return _covers(a, b) or _covers(b, a)


def documented_metrics() -> dict:
    """{canonical name: type} from the catalog tables."""
    out = {}
    for line in DOC.read_text(encoding="utf-8").splitlines():
        m = _ROW_RE.match(line.strip())
        if m is None:
            continue
        for span in re.findall(r"`([^`]+)`", m.group("names")):
            out[_canonical(span)] = m.group("type")
    return out


def registered_metrics() -> dict:
    """{canonical name: (type, file)} from every registration site."""
    out = {}
    for path in sorted(SRC.rglob("*.py")):
        for kind, name in _REG_RE.findall(path.read_text(encoding="utf-8")):
            out[_canonical(name)] = (kind, str(path.relative_to(REPO)))
    return out


@pytest.fixture(scope="module")
def documented():
    docs = documented_metrics()
    assert len(docs) > 40, "catalog parser found suspiciously few rows"
    return docs


@pytest.fixture(scope="module")
def registered():
    regs = registered_metrics()
    assert len(regs) > 40, "registration scanner found suspiciously few sites"
    return regs


def test_every_registered_metric_is_documented(documented, registered):
    undocumented = {
        name: site
        for name, (kind, site) in registered.items()
        if not any(_matches(doc, name) for doc in documented)
    }
    assert not undocumented, (
        "metrics registered in code but missing from the catalog in "
        f"docs/observability.md: {undocumented}"
    )


def test_every_documented_metric_exists_in_code(documented, registered):
    stale = [
        name
        for name in documented
        if not any(_matches(reg, name) for reg in registered)
    ]
    assert not stale, (
        "catalog rows in docs/observability.md with no registration "
        f"site in src/repro: {stale}"
    )


def test_documented_types_match_registrations(documented, registered):
    mismatches = []
    for doc_name, doc_type in documented.items():
        if doc_name in registered:
            # exact registration wins over wildcard families it happens
            # to overlap (pll.build.seconds vs f"pll.build.{kind}")
            matching = {doc_name: registered[doc_name]}
        else:
            matching = {
                reg_name: info
                for reg_name, info in registered.items()
                if _matches(doc_name, reg_name)
            }
        for reg_name, (kind, site) in matching.items():
            if kind != doc_type:
                mismatches.append((doc_name, doc_type, reg_name, kind, site))
    assert not mismatches, (
        "catalog type column disagrees with the registration kind: "
        f"{mismatches}"
    )


def test_serving_additions_are_catalogued(documented):
    # The observability-path metrics this layer added must stay in the
    # docs by their canonical names.
    for name, kind in [
        ("serve.stage.*_seconds", "histogram"),
        ("serve.pages_faulted", "counter"),
        ("serve.events.*", "gauge"),
        ("process.peak_rss_bytes", "gauge"),
    ]:
        assert documented.get(name) == kind, (name, documented.get(name))
