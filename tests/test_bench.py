"""Unit tests for the benchmark harness (datasets, runner, reporting)."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError, ReproError
from repro.bench.datasets import DATASETS, DATASET_ORDER, load_dataset, load_snap_file
from repro.bench.reporting import (
    render_grouped_bars,
    render_ratio_line,
    render_table,
)
from repro.bench.runner import BenchContext, clear_cache, get_context
from repro.bench.workloads import (
    dual_failure_workload,
    node_failure_workload,
    table4_workload,
)
from repro.graph.components import is_connected
from repro.graph import generators


class TestDatasets:
    def test_registry_has_all_six(self):
        assert set(DATASETS) == {
            "gnutella",
            "facebook",
            "wiki_vote",
            "oregon",
            "ca_hepth",
            "ca_grqc",
        }
        assert DATASET_ORDER == list(DATASETS)

    def test_paper_references_complete(self):
        for spec in DATASETS.values():
            assert spec.paper.num_vertices > 1000
            assert spec.paper.num_edges > spec.paper.num_vertices
            assert spec.paper.sief_query_us < spec.paper.bfs_query_us

    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_generation_connected_and_deterministic(self, name):
        a = load_dataset(name)
        b = load_dataset(name)
        assert a == b
        assert is_connected(a)
        assert a.num_vertices >= 100

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("twitter")

    def test_load_snap_file(self, tmp_path):
        from repro.graph.io import write_edge_list

        g = generators.compose_disjoint(
            [generators.cycle_graph(12), generators.path_graph(3)]
        )
        path = tmp_path / "snap.txt"
        write_edge_list(g, path)
        loaded = load_snap_file(path)
        assert loaded.num_vertices == 12  # giant component only
        assert is_connected(loaded)


class TestRunnerCache:
    def test_context_memoized(self):
        clear_cache()
        a = get_context("ca_grqc")
        b = get_context("ca_grqc")
        assert a is b
        clear_cache()

    def test_lazy_graph(self):
        clear_cache()
        ctx = get_context("ca_grqc")
        assert ctx._graph is None
        graph = ctx.graph
        assert ctx._graph is graph
        clear_cache()


class TestWorkloads:
    def test_table4_workload_size(self, paper_graph):
        triples = table4_workload(paper_graph, count=77)
        assert len(triples) == 77

    def test_dual_failure_edges_distinct(self, paper_graph):
        for s, t, e1, e2 in dual_failure_workload(paper_graph, 25):
            assert e1 != e2
            assert s != t

    def test_node_failure_all_distinct(self, paper_graph):
        for s, t, w in node_failure_workload(paper_graph, 25):
            assert len({s, t, w}) == 3


class TestReporting:
    def test_render_table_contains_everything(self):
        out = render_table(
            "Table X",
            ["name", "count", "ratio"],
            [["alpha", 1234, 0.5], ["beta", 7, float("inf")]],
            note="hello",
        )
        assert "Table X" in out
        assert "1,234" in out
        assert "inf" in out
        assert "note: hello" in out

    def test_render_table_alignment(self):
        out = render_table("T", ["a"], [["x"], ["longer"]])
        lines = out.splitlines()
        assert len(set(map(len, lines[1:4]))) == 1  # fixed width

    def test_grouped_bars_log_scale(self):
        out = render_grouped_bars(
            "Figure Y",
            ["Gnu", "Fac"],
            ["naive", "aff", "all"],
            [[1000.0, 100.0, 1.0], [2000.0, 50.0, 2.0]],
            log_scale=True,
            unit="s",
        )
        assert "Figure Y" in out and "log scale" in out
        assert out.count("|") >= 6

    def test_grouped_bars_empty(self):
        out = render_grouped_bars("Z", ["g"], ["s"], [[0.0]])
        assert "no data" in out

    def test_ratio_line(self):
        line = render_ratio_line("IT", 2.0, 0.5)
        assert "x4.00" in line
