"""Error-hierarchy and public-API consistency tests."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro import exceptions as exc


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(exc):
            obj = getattr(exc, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not exc.ReproError:
                    assert issubclass(obj, exc.ReproError), name

    def test_vertex_not_found_payload(self):
        e = exc.VertexNotFound(7, 5)
        assert e.vertex == 7 and e.n == 5
        assert "vertex 7" in str(e)

    def test_edge_not_found_payload(self):
        e = exc.EdgeNotFound(1, 2)
        assert (e.u, e.v) == (1, 2)
        assert "(1, 2)" in str(e)

    def test_failure_case_not_indexed_payload(self):
        e = exc.FailureCaseNotIndexed(3, 4)
        assert (e.u, e.v) == (3, 4)
        assert "supplemental" in str(e)

    def test_single_except_clause_catches_everything(self):
        for err in (
            exc.GraphError("x"),
            exc.LabelingError("x"),
            exc.SerializationError("x"),
            exc.DatasetError("x"),
            exc.IndexError_("x"),
        ):
            with pytest.raises(exc.ReproError):
                raise err


class TestPublicAPI:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph",
            "repro.order",
            "repro.labeling",
            "repro.core",
            "repro.baselines",
            "repro.failures",
            "repro.analysis",
            "repro.bench",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert mod.__all__, module
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph.graph",
            "repro.graph.traversal",
            "repro.labeling.pll",
            "repro.labeling.isl",
            "repro.labeling.dynamic",
            "repro.core.affected",
            "repro.core.bfs_aff",
            "repro.core.bfs_all",
            "repro.core.query",
            "repro.core.lazy",
            "repro.failures.weighted",
            "repro.analysis.centrality",
        ],
    )
    def test_key_modules_have_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80, module

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_public_callables_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if callable(getattr(repro, name))
            and not isinstance(getattr(repro, name), type)
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, undocumented
