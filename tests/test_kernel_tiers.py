"""Kernel tier selection, fallback, and capability reporting.

Covers the dispatcher in :mod:`repro.kernels`: precedence of
``set_tier`` (the CLI's ``--kernels``) over ``SIEF_KERNELS`` over
``auto``, hard errors for explicitly-requested unavailable tiers, the
forced pure-numpy fallback when no accelerated backend exists (checked
in a subprocess with numba imports blocked and the C compiler opted
out), the on-demand compile cache of the C backend, and the ``sief
kernels`` capability report surfaced into bench-history metadata.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro import kernels
from repro.cli import main
from repro.exceptions import KernelTierError
from repro.kernels import cext_backend, numba_backend

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _clean_tier_state(monkeypatch):
    """Isolate selection state: env cleared, caches dropped on both sides."""
    monkeypatch.delenv("SIEF_KERNELS", raising=False)
    kernels.set_tier(None)
    kernels._resolution.clear()
    yield
    kernels.set_tier(None)
    kernels._resolution.clear()


def _accelerated_available() -> bool:
    return (
        numba_backend.probe().get("available")
        or cext_backend.probe().get("available")
    )


# ---------------------------------------------------------------------------
# selection precedence
# ---------------------------------------------------------------------------


def test_default_request_is_auto():
    assert kernels.requested_tier() == "auto"


def test_env_var_selects_tier(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "numpy")
    assert kernels.requested_tier() == "numpy"
    assert kernels.effective_tier() == "numpy"
    tier, fn = kernels.resolve("bfs")
    assert tier == "numpy"
    assert fn is None


def test_env_var_is_case_and_space_insensitive(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "  NumPy ")
    assert kernels.requested_tier() == "numpy"


def test_invalid_env_var_raises(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "fortran")
    with pytest.raises(KernelTierError, match="fortran"):
        kernels.requested_tier()


def test_set_tier_beats_env_var(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "auto")
    kernels.set_tier("numpy")
    assert kernels.requested_tier() == "numpy"
    # and it exports the env var so spawned workers inherit the choice
    assert os.environ["SIEF_KERNELS"] == "numpy"


def test_set_tier_none_reverts_to_env(monkeypatch):
    kernels.set_tier("numpy")
    kernels.set_tier(None)
    monkeypatch.setenv("SIEF_KERNELS", "numpy")
    assert kernels.requested_tier() == "numpy"
    monkeypatch.delenv("SIEF_KERNELS")
    assert kernels.requested_tier() == "auto"


def test_set_tier_rejects_unknown_tier():
    with pytest.raises(KernelTierError, match="cython"):
        kernels.set_tier("cython")


def test_use_tier_restores_prior_selection(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "auto")
    kernels.set_tier("numpy")
    with kernels.use_tier("auto"):
        assert kernels.requested_tier() == "auto"
    assert kernels.requested_tier() == "numpy"
    assert os.environ["SIEF_KERNELS"] == "numpy"


def test_use_tier_restores_unset_env(monkeypatch):
    monkeypatch.delenv("SIEF_KERNELS", raising=False)
    with kernels.use_tier("numpy"):
        assert os.environ["SIEF_KERNELS"] == "numpy"
    assert "SIEF_KERNELS" not in os.environ


# ---------------------------------------------------------------------------
# hard errors vs silent auto fallback
# ---------------------------------------------------------------------------


def test_explicit_unavailable_tier_raises():
    unavailable = [
        tier
        for tier, backend in (
            ("numba", numba_backend),
            ("cext", cext_backend),
        )
        if not backend.probe().get("available")
    ]
    if not unavailable:
        pytest.skip("every accelerated backend is available on this host")
    kernels.set_tier(unavailable[0])
    with pytest.raises(KernelTierError, match="unavailable"):
        kernels.resolve("bfs")


def test_auto_never_raises_and_prefers_accelerated():
    kernels.set_tier("auto")
    tier, fn = kernels.resolve("relabel")
    if _accelerated_available():
        assert tier in ("numba", "cext")
        assert callable(fn)
    else:
        assert tier == "numpy"
        assert fn is None


def test_resolution_is_consistent_across_kernels():
    # One tier serves the whole kernel set, except for kernels the
    # selected backend doesn't implement (e.g. numba has no pll port),
    # which fall through to the numpy reference per kernel.
    tiers = {kernels.resolve(name)[0] for name in kernels.KERNEL_NAMES}
    assert tiers <= {kernels.effective_tier(), "numpy"}


def test_forced_fallback_without_numba_or_compiler():
    """Subprocess with numba imports blocked and the C compiler opted out.

    This is the clean-fallback acceptance check: with no accelerated
    backend reachable, ``auto`` must resolve to pure numpy without
    raising and without ever importing numba.
    """
    code = textwrap.dedent(
        """
        import sys

        class _BlockNumba:
            def find_module(self, name, path=None):  # pragma: no cover
                return None

            def find_spec(self, name, path=None, target=None):
                if name == "numba" or name.startswith("numba."):
                    raise ImportError("numba blocked for fallback test")
                return None

        sys.meta_path.insert(0, _BlockNumba())

        from repro import kernels

        assert kernels.requested_tier() == "auto"
        assert kernels.effective_tier() == "numpy"
        for name in kernels.KERNEL_NAMES:
            tier, fn = kernels.resolve(name)
            assert tier == "numpy" and fn is None, (name, tier)
        report = kernels.capability_report()
        assert report["effective"] == "numpy"
        assert report["backends"]["numba"]["available"] is False
        assert report["backends"]["cext"]["available"] is False
        assert "numba" not in sys.modules
        print("fallback-ok")
        """
    )
    env = dict(os.environ)
    env.pop("SIEF_KERNELS", None)
    env["SIEF_KERNELS_CC"] = "none"  # opt out of the C backend
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert "fallback-ok" in out.stdout


def test_cc_env_none_disables_cext(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS_CC", "none")
    cext_backend.reset()
    try:
        info = cext_backend.probe()
        assert info["available"] is False
        assert "compiler" in info["error"] or info["compiler"] is None
        kernels.set_tier("cext")
        with pytest.raises(KernelTierError, match="unavailable"):
            kernels.resolve("bfs")
    finally:
        cext_backend.reset()


# ---------------------------------------------------------------------------
# compile cache (cext) and warm-up (numba)
# ---------------------------------------------------------------------------


def test_cext_compile_cache_round_trip(tmp_path, monkeypatch):
    if not cext_backend.probe().get("available"):
        pytest.skip("no working C compiler on this host")
    monkeypatch.setenv("SIEF_KERNELS_CACHE", str(tmp_path))
    cext_backend.reset()
    try:
        first = cext_backend.probe()
        assert first["available"] is True
        assert first["compile_cached"] is False  # fresh dir: really compiled
        assert first["library"].startswith(str(tmp_path))
        cext_backend.reset()
        second = cext_backend.probe()
        assert second["available"] is True
        assert second["compile_cached"] is True  # same source hash: reused
        assert second["library"] == first["library"]
    finally:
        cext_backend.reset()


def test_numba_warmup_compiles_every_kernel():
    if not numba_backend.probe().get("available"):
        pytest.skip("numba not installed")
    numba_backend.warmup()  # must not raise; compiles all four kernels


# ---------------------------------------------------------------------------
# capability report and CLI
# ---------------------------------------------------------------------------


def test_capability_report_shape():
    report = kernels.capability_report()
    assert report["requested"] == "auto"
    assert report["effective"] in kernels.TIERS
    assert set(report["kernels"]) == set(kernels.KERNEL_NAMES)
    assert report["backends"]["numpy"]["available"] is True
    for name in ("numba", "cext"):
        assert "available" in report["backends"][name]


def test_capability_report_with_invalid_env(monkeypatch):
    monkeypatch.setenv("SIEF_KERNELS", "gpu")
    report = kernels.capability_report()
    assert report["effective"] is None
    assert "gpu" in report["error"]


def test_cli_kernels_subcommand(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "requested" in out
    assert "effective" in out


def test_cli_kernels_json(capsys):
    assert main(["kernels", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["requested"] == "auto"
    assert set(report["kernels"]) == set(kernels.KERNEL_NAMES)


def test_cli_kernels_flag_overrides_env(monkeypatch, capsys):
    monkeypatch.setenv("SIEF_KERNELS", "auto")
    assert main(["--kernels", "numpy", "kernels", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["requested"] == "numpy"
    assert report["effective"] == "numpy"


def test_cli_rejects_unknown_kernel_tier():
    with pytest.raises(SystemExit):
        main(["--kernels", "gpu", "kernels"])


def test_env_metadata_records_kernel_tier():
    from repro.bench.history import env_metadata

    with kernels.use_tier("numpy"):
        meta = env_metadata()
    assert meta["kernel_tier"] == "numpy"


def test_bench_compare_refuses_cross_tier_runs():
    from repro.bench.history import BenchRun, CrossTierError, compare

    base = BenchRun(
        bench_id="build",
        samples=(1.0,),
        meta={"hostname": "h", "kernel_tier": "numpy"},
    )
    head = BenchRun(
        bench_id="build",
        samples=(0.2,),
        meta={"hostname": "h", "kernel_tier": "cext"},
    )
    with pytest.raises(CrossTierError):
        compare(base, head)
    result = compare(base, head, allow_cross_tier=True)
    assert result.ratio == pytest.approx(0.2)
    assert result.improved


def test_bench_compare_tolerates_missing_tier_metadata():
    """Pre-existing history rows without kernel_tier still compare."""
    from repro.bench.history import BenchRun, compare

    base = BenchRun(bench_id="build", samples=(1.0,), meta={"hostname": "h"})
    head = BenchRun(
        bench_id="build",
        samples=(1.1,),
        meta={"hostname": "h", "kernel_tier": "numpy"},
    )
    assert compare(base, head).ratio == pytest.approx(1.1)
