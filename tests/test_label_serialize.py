"""Unit tests for labeling serialization (binary + JSON)."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.serialize import (
    labeling_from_bytes,
    labeling_from_json,
    labeling_to_bytes,
    labeling_to_json,
    load_labeling,
    save_labeling,
)
from repro.labeling.stats import labeling_bytes


@pytest.fixture
def labeling():
    g = generators.erdos_renyi_gnm(30, 60, seed=21)
    return build_pll(g)


def test_binary_round_trip(labeling):
    assert labeling_from_bytes(labeling_to_bytes(labeling)) == labeling


def test_binary_round_trip_paper(paper_labeling):
    assert labeling_from_bytes(labeling_to_bytes(paper_labeling)) == (
        paper_labeling
    )


def test_file_round_trip(tmp_path, labeling):
    path = tmp_path / "labels.bin"
    save_labeling(labeling, path)
    assert load_labeling(path) == labeling


def test_binary_size_matches_byte_model(labeling):
    """The on-disk blob tracks the modelled 8 B/entry + overhead."""
    blob = labeling_to_bytes(labeling)
    modelled = labeling_bytes(labeling.total_entries(), labeling.num_vertices)
    # magic (8) + n (8) + ordering (4n); model charges 8/vertex overhead
    # which covers sizes (4n) with 4n to spare.
    assert abs(len(blob) - modelled) <= 16 + 4 * labeling.num_vertices


def test_bad_magic_rejected():
    with pytest.raises(SerializationError, match="magic"):
        labeling_from_bytes(b"NOTMAGIC" + b"\x00" * 64)


def test_truncated_blob_rejected(labeling):
    blob = labeling_to_bytes(labeling)
    with pytest.raises(SerializationError):
        labeling_from_bytes(blob[: len(blob) // 2])


def test_json_round_trip(labeling):
    assert labeling_from_json(labeling_to_json(labeling)) == labeling


def test_json_malformed():
    with pytest.raises(SerializationError):
        labeling_from_json("{}")
    with pytest.raises(SerializationError):
        labeling_from_json("not json at all")


def test_empty_labeling_round_trip():
    from repro.labeling.label import Labeling
    from repro.order.ordering import VertexOrdering

    empty = Labeling.empty(VertexOrdering([1, 0, 2]))
    assert labeling_from_bytes(labeling_to_bytes(empty)) == empty
    assert labeling_from_json(labeling_to_json(empty)) == empty
