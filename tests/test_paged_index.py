"""Demand-paged LRU index coverage (ISSUE 9).

A :class:`PagedSIEFIndex` answering a query stream wider than its
capacity must (a) give the same answers as the fully-resident engine,
(b) keep its resident set bounded by the capacity, and (c) report the
paging traffic through the ``sief.lazy.cache.*`` metrics.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_sief
from repro.core.lazy import PagedSIEFIndex
from repro.core.query import SIEFQueryEngine
from repro.core.segstore import SegmentStore, build_sief_sharded
from repro.exceptions import IndexError_
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.obs import hooks, installed
from repro.order.strategies import by_degree

CAPACITY = 4


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    graph = generators.erdos_renyi_gnm(36, 80, seed=5)
    path, _ = build_sief_sharded(
        graph, tmp_path_factory.mktemp("paged") / "store", shard_size=9
    )
    reference = SIEFQueryEngine(
        build_sief(graph, build_pll(graph, by_degree(graph)))
    )
    return graph, path, reference


def test_answers_match_in_ram_engine_under_eviction(world):
    graph, path, reference = world
    paged = PagedSIEFIndex(SegmentStore(path), capacity=CAPACITY)
    engine = SIEFQueryEngine(paged)
    pairs = [(s, (s * 7 + 3) % graph.num_vertices) for s in range(18)]
    for edge in sorted(graph.edges()):
        for s, t in pairs:
            assert engine.distance(s, t, edge) == reference.distance(
                s, t, edge
            ), (edge, s, t)
        assert paged.resident_cases <= CAPACITY


def test_resident_set_is_bounded_and_evictions_counted(world):
    graph, path, _ = world
    edges = sorted(graph.edges())
    assert len(edges) > 3 * CAPACITY  # the stream is wider than the cache
    with installed() as reg:
        paged = PagedSIEFIndex(SegmentStore(path), capacity=CAPACITY)
        for u, v in edges:
            paged.supplement(u, v)
            assert paged.resident_cases <= CAPACITY
        assert reg.counter_value("sief.lazy.cache.misses") == len(edges)
        assert reg.counter_value("sief.lazy.cache.evictions") == len(edges) - CAPACITY
        assert reg.gauge("sief.lazy.cache.resident").value == CAPACITY
        # The hot tail is resident: re-touching it is pure hits.
        for u, v in edges[-CAPACITY:]:
            paged.supplement(u, v)
        assert reg.counter_value("sief.lazy.cache.hits") == CAPACITY
        assert reg.counter_value("sief.lazy.cache.misses") == len(edges)
    assert paged.evictions == len(edges) - CAPACITY
    assert paged.hits == CAPACITY


def test_lru_evicts_least_recently_used(world):
    _, path, _ = world
    paged = PagedSIEFIndex(SegmentStore(path), capacity=2)
    e0, e1, e2 = paged.supplements[:3]
    paged.supplement(*e0)
    paged.supplement(*e1)
    paged.supplement(*e0)  # refresh e0; e1 is now the LRU victim
    paged.supplement(*e2)
    misses = paged.misses
    paged.supplement(*e0)  # still resident: no new miss
    assert paged.misses == misses


def test_batch_query_matches_reference(world):
    graph, path, reference = world
    engine = SIEFQueryEngine(
        PagedSIEFIndex(SegmentStore(path), capacity=CAPACITY)
    )
    edge = sorted(graph.edges())[0]
    pairs = [(s, (s + 11) % graph.num_vertices) for s in range(25)]
    assert [float(d) for d in engine.batch_query(edge, pairs)] == [
        float(d) for d in reference.batch_query(edge, pairs)
    ]


def test_duck_type_surface(world):
    graph, path, _ = world
    store = SegmentStore(path)
    paged = PagedSIEFIndex(store, capacity=CAPACITY)
    assert paged.num_cases == graph.num_edges
    assert paged.supplements == sorted(graph.edges())
    assert paged.labeling.num_vertices == graph.num_vertices
    assert paged.total_supplemental_entries() == store.total_entries
    u, v = paged.supplements[0]
    assert paged.has_case(u, v)
    assert not paged.has_case(4000, 4001)
    assert paged.freeze() is paged


def test_capacity_must_be_positive(world):
    _, path, _ = world
    with pytest.raises(IndexError_):
        PagedSIEFIndex(SegmentStore(path), capacity=0)
