"""Perf-regression smoke: the vectorized batch path must stay fast.

Replays the shape of the ``BENCH_query_throughput.json`` workload (BA
graph, uniform random pairs, Equation-1 label queries) at reduced scale
and fails if ``batch_dist_query`` over the frozen flat backend beats the
scalar ``dist_query`` loop by less than **3x**.  The recorded full-scale
ratio is ~7.1x (``label_queries.batch_over_scalar_list``), so 3x leaves
generous headroom for slow CI machines while still catching a
de-vectorization regression (which shows up as ~1x).

Marked ``slow``: deselect with ``-m 'not slow'`` for quick iterations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import batch_dist_query, dist_query

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_REPORT = REPO_ROOT / "BENCH_query_throughput.json"

GRAPH_SEED = 7  # same seeds as the benchmark
WORKLOAD_SEED = 42
VERTICES = 1500
ATTACH = 3
BATCH_QUERIES = 30_000
SCALAR_QUERIES = 3_000
REQUIRED_SPEEDUP = 3.0


def _workload():
    graph = generators.barabasi_albert(VERTICES, ATTACH, seed=GRAPH_SEED)
    listed = build_pll(graph)
    frozen = listed.copy().freeze()
    rng = np.random.default_rng(WORKLOAD_SEED)
    pairs = rng.integers(0, VERTICES, size=(BATCH_QUERIES, 2)).astype(np.int64)
    return listed, frozen, pairs


@pytest.mark.slow
def test_batch_beats_scalar_loop_by_3x():
    listed, frozen, pairs = _workload()
    scalar_pairs = pairs[:SCALAR_QUERIES]

    # Best-of-3 on each side to shave scheduler noise without averaging
    # in warm-up effects.
    scalar_best = min(
        _time_scalar(listed, scalar_pairs) for _ in range(3)
    )
    batch_best = min(_time_batch(frozen, pairs) for _ in range(3))

    scalar_qps = len(scalar_pairs) / scalar_best
    batch_qps = len(pairs) / batch_best
    speedup = batch_qps / scalar_qps
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized batch path regressed: {speedup:.2f}x over the scalar "
        f"loop (required {REQUIRED_SPEEDUP}x; recorded full-scale ratio "
        "is ~7.1x)"
    )


@pytest.mark.slow
def test_batch_answers_still_exact():
    # Speed means nothing if the vectorized join drifted; pin a sample.
    listed, frozen, pairs = _workload()
    got = batch_dist_query(frozen, pairs[:500])
    want = np.array(
        [dist_query(listed, int(s), int(t)) for s, t in pairs[:500]],
        dtype=np.float64,
    )
    assert np.array_equal(got, want)


@pytest.mark.slow
def test_recorded_benchmark_report_shape():
    # The workload this smoke replays must keep existing at full scale.
    report = json.loads(BENCH_REPORT.read_text())
    label = report["label_queries"]
    assert label["batch_over_scalar_list"] >= REQUIRED_SPEEDUP
    assert report["graph"]["generator"] == "barabasi_albert"


def _time_scalar(listed, pairs) -> float:
    t0 = time.perf_counter()
    for s, t in pairs:
        dist_query(listed, int(s), int(t))
    return time.perf_counter() - t0


def _time_batch(frozen, pairs) -> float:
    t0 = time.perf_counter()
    batch_dist_query(frozen, pairs)
    return time.perf_counter() - t0
