"""Integration tests: the full pipeline on mid-size graphs.

These mirror what the benchmark suite does, at a scale small enough for
the test run: generate a structured graph, build PLL + SIEF, and check
the paper's qualitative claims end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import generators
from repro.graph.components import bridges
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, dist_query
from repro.labeling.stats import labeling_stats
from repro.baselines.bfs_query import BFSQueryBaseline
from repro.baselines.naive_rebuild import NaiveRebuildBaseline
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.core.stats import sief_stats
from repro.failures.model import random_query_triples


@pytest.fixture(scope="module")
def pipeline():
    g = generators.powerlaw_cluster(120, 3, 0.5, seed=77)
    labeling = build_pll(g)
    index, report = SIEFBuilder(g, labeling, algorithm="bfs_all").build()
    return g, labeling, index, report


class TestEndToEnd:
    def test_all_cases_present(self, pipeline):
        g, _, index, _ = pipeline
        assert index.num_cases == g.num_edges

    def test_sampled_queries_match_bfs(self, pipeline):
        g, _, index, _ = pipeline
        engine = SIEFQueryEngine(index)
        baseline = BFSQueryBaseline(g)
        for q in random_query_triples(g, 400, seed=5):
            assert engine.distance(q.s, q.t, q.edge) == baseline.distance(
                q.s, q.t, q.edge
            ), q

    def test_bridge_cases_disconnect(self, pipeline):
        g, _, index, _ = pipeline
        engine = SIEFQueryEngine(index)
        for u, v in bridges(g):
            si = index.supplement(u, v)
            assert si.affected.disconnected
            # A cross-side pair must report INF.
            s = si.affected.side_u[0]
            t = si.affected.side_v[0]
            assert engine.distance(s, t, (u, v)) == INF

    def test_index_compactness_vs_naive(self, pipeline):
        """The paper's Gnutella pitch (105 MB -> 14 MB), at our scale:
        SIEF total is a small multiple of the original index and far
        below m per-case rebuilds."""
        g, labeling, index, report = pipeline
        stats = sief_stats(index, report)
        naive_bytes = g.num_edges * stats.original_bytes
        assert stats.total_bytes < naive_bytes / 10

    def test_report_totals_consistent(self, pipeline):
        g, _, index, report = pipeline
        assert report.num_cases == g.num_edges
        assert report.total_supplemental_entries == (
            index.total_supplemental_entries()
        )

    def test_unaffected_majority(self, pipeline):
        """§4.1: distances of a considerable proportion of pairs remain
        unchanged after a failure — affected sets are small on average."""
        g, _, _, report = pipeline
        assert report.avg_affected < 0.5 * g.num_vertices


class TestAlgorithmsAgreeAtScale:
    def test_full_index_identical(self):
        g = generators.barabasi_albert(90, 3, seed=9)
        labeling = build_pll(g)
        aff, _ = SIEFBuilder(g, labeling, algorithm="bfs_aff").build()
        all_, _ = SIEFBuilder(g, labeling, algorithm="bfs_all").build()
        for edge, si in aff.iter_cases():
            assert all_.supplement(*edge) == si


class TestNaiveEquivalenceSampled:
    def test_naive_rebuild_agrees_on_sample(self):
        g = generators.erdos_renyi_gnm(40, 80, seed=10)
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        naive = NaiveRebuildBaseline(g)
        rng = random.Random(0)
        edges = rng.sample(list(g.edges()), 6)
        for edge in edges:
            for s in range(0, 40, 5):
                for t in range(0, 40, 7):
                    assert naive.distance(s, t, edge) == engine.distance(
                        s, t, edge
                    )


class TestWeightedPipeline:
    def test_weighted_end_to_end(self):
        from repro.failures.weighted import build_weighted_sief
        from repro.graph.weighted import WeightedGraph
        from repro.graph.traversal import dijkstra_distances

        rng = random.Random(3)
        base = generators.powerlaw_cluster(40, 3, 0.4, seed=3)
        wg = WeightedGraph(40)
        for u, v in base.edges():
            wg.add_edge(u, v, rng.choice([1.0, 2.0, 2.5]))
        index = build_weighted_sief(wg)
        for u, v, _w in list(wg.edges())[:15]:
            truth = dijkstra_distances(wg, 0, avoid=(u, v))
            for t in range(40):
                assert index.distance(0, t, (u, v)) == pytest.approx(
                    truth[t]
                )
