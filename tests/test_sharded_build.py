"""Sharded out-of-core build conformance (ISSUE 9).

Whatever the shard size — one case per shard, a handful, or everything
in one shard — the rebuilt store must be bit-identical to the in-RAM
build, and the build report / observability counters must describe the
spill truthfully.
"""

from __future__ import annotations

import math

import pytest

from repro.core.builder import build_sief
from repro.core.segstore import SegmentStore, build_sief_sharded
from repro.core.serialize import index_to_bytes
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.obs import hooks, installed
from repro.order.strategies import by_degree


@pytest.fixture(autouse=True)
def _no_leaked_hooks():
    before = (hooks.registry, hooks.tracer)
    yield
    assert (hooks.registry, hooks.tracer) == before


@pytest.fixture(scope="module")
def graph():
    return generators.barabasi_albert(48, 2, seed=13)


@pytest.fixture(scope="module")
def reference_blob(graph):
    return index_to_bytes(build_sief(graph, build_pll(graph, by_degree(graph))))


@pytest.mark.parametrize("shard_size", [1, 5, 10_000])
def test_bit_identical_across_shard_sizes(
    graph, reference_blob, tmp_path, shard_size
):
    path, report = build_sief_sharded(
        graph, tmp_path / "store", shard_size=shard_size
    )
    assert index_to_bytes(SegmentStore(path).to_index()) == reference_blob
    assert report.num_cases == graph.num_edges
    assert report.num_shards == math.ceil(graph.num_edges / shard_size)
    assert report.max_resident_cases <= shard_size


def test_shards_count_picks_shard_size(graph, reference_blob, tmp_path):
    path, report = build_sief_sharded(graph, tmp_path / "store", shards=4)
    assert report.num_shards == 4
    assert index_to_bytes(SegmentStore(path).to_index()) == reference_blob


def test_edge_subset_build(graph, tmp_path):
    edges = sorted(graph.edges())[::3]
    labeling = build_pll(graph, by_degree(graph))
    reference = build_sief(graph, labeling, edges=edges)
    path, report = build_sief_sharded(
        graph, tmp_path / "store", labeling=labeling, edges=edges, shard_size=4
    )
    assert report.num_cases == len(edges)
    assert index_to_bytes(SegmentStore(path).to_index()) == index_to_bytes(
        reference
    )


def test_parallel_sharded_build_is_identical(graph, reference_blob, tmp_path):
    path, _ = build_sief_sharded(
        graph, tmp_path / "store", shard_size=11, jobs=2
    )
    assert index_to_bytes(SegmentStore(path).to_index()) == reference_blob


def test_spill_metrics_are_recorded(graph, tmp_path):
    with installed() as reg:
        _, report = build_sief_sharded(graph, tmp_path / "store", shard_size=7)
        assert reg.counter_value("sief.ooc.shards") == report.num_shards
        assert reg.counter_value("sief.ooc.spilled_cases") == report.num_cases
        assert (
            reg.counter_value("sief.ooc.spilled_bytes") == report.spilled_bytes
        )
        assert (
            reg.gauge("sief.ooc.max_resident_cases").value
            == report.max_resident_cases
        )
    assert report.spilled_bytes > 0
    assert report.build_seconds >= 0.0


def test_store_suffix_is_appended(graph, tmp_path):
    path, _ = build_sief_sharded(graph, tmp_path / "plain", shard_size=50)
    assert path.name.endswith(".siefseg")
