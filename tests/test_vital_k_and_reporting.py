"""Tests for k-most-vital-edges, the report assembler, and the
geometric generator."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distance_between
from repro.graph.validation import validate_graph
from repro.labeling.query import INF
from repro.analysis.vital_arc import k_most_vital_edges
from repro.bench.report_all import build_report, collect_sections, main


class TestKMostVital:
    def test_greedy_steps_are_locally_optimal(self):
        g = generators.erdos_renyi_gnm(16, 30, seed=25)
        s, t = 0, 9
        results = k_most_vital_edges(g, s, t, k=3)
        assert results
        work = g.copy()
        for res in results:
            # Oracle: no edge of the current graph does worse.
            for edge in list(work.edges()):
                d = bfs_distance_between(work, s, t, avoid=edge)
                d = d if d != UNREACHED else INF
                assert d <= res.replacement_distance or (
                    res.replacement_distance == INF
                )
            work.remove_edge(*res.edge)

    def test_distances_monotonically_degrade(self):
        g = generators.powerlaw_cluster(30, 3, 0.4, seed=26)
        results = k_most_vital_edges(g, 0, 17, k=4)
        bases = [r.base_distance for r in results]
        assert bases == sorted(bases)

    def test_stops_on_disconnection(self, two_triangles):
        results = k_most_vital_edges(two_triangles, 0, 5, k=5)
        assert results[-1].replacement_distance == INF
        assert len(results) < 5

    def test_input_graph_untouched(self, cycle6):
        before = cycle6.num_edges
        k_most_vital_edges(cycle6, 0, 3, k=2)
        assert cycle6.num_edges == before

    def test_bad_k_rejected(self, cycle6):
        with pytest.raises(ReproError):
            k_most_vital_edges(cycle6, 0, 3, k=0)

    def test_cycle_two_cuts_disconnect(self, cycle6):
        # A cycle pair is 2-edge-connected: exactly 2 removals cut it.
        results = k_most_vital_edges(cycle6, 0, 3, k=4)
        assert len(results) == 2
        assert results[1].replacement_distance == INF


class TestReportAll:
    def test_collects_known_sections_in_order(self, tmp_path):
        (tmp_path / "table4_query_time.txt").write_text("T4 body")
        (tmp_path / "table2_datasets.txt").write_text("T2 body")
        (tmp_path / "custom_extra.txt").write_text("extra body")
        sections = collect_sections(tmp_path)
        titles = [t for t, _ in sections]
        assert titles[0].startswith("Table 2")
        assert titles[1].startswith("Table 4")
        assert titles[-1] == "custom_extra"

    def test_build_report_wraps_in_code_fences(self, tmp_path):
        (tmp_path / "table2_datasets.txt").write_text("row | row")
        report = build_report(tmp_path)
        assert "## Table 2" in report
        assert "```\nrow | row\n```" in report

    def test_empty_dir_notes_missing_results(self, tmp_path):
        assert "No results found" in build_report(tmp_path)

    def test_main_writes_file(self, tmp_path, capsys):
        (tmp_path / "table2_datasets.txt").write_text("x")
        out = tmp_path / "report.md"
        rc = main([str(tmp_path), "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "benchmark report" in out.read_text()

    def test_main_stdout(self, tmp_path, capsys):
        (tmp_path / "table2_datasets.txt").write_text("x")
        assert main([str(tmp_path)]) == 0
        assert "benchmark report" in capsys.readouterr().out


class TestRandomGeometric:
    def test_simple_and_deterministic(self):
        a = generators.random_geometric(80, 0.18, seed=5)
        b = generators.random_geometric(80, 0.18, seed=5)
        assert a == b
        assert validate_graph(a) == []

    def test_edges_respect_radius(self):
        # Reconstruct positions with the same RNG draw order.
        import random

        rng = random.Random(9)
        points = [(rng.random(), rng.random()) for _ in range(50)]
        g = generators.random_geometric(50, 0.25, seed=9)
        for u, v in g.edges():
            (x1, y1), (x2, y2) = points[u], points[v]
            assert (x1 - x2) ** 2 + (y1 - y2) ** 2 <= 0.25**2 + 1e-12

    def test_larger_radius_more_edges(self):
        small = generators.random_geometric(60, 0.1, seed=3)
        large = generators.random_geometric(60, 0.3, seed=3)
        assert large.num_edges > small.num_edges

    def test_bad_radius(self):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            generators.random_geometric(10, 0.0)
