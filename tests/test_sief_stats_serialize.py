"""Unit tests for SIEF statistics and index serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distances_avoiding_edge
from repro.labeling.query import INF
from repro.labeling.stats import BYTES_PER_ENTRY
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.core.serialize import (
    index_from_bytes,
    index_to_bytes,
    load_index,
    save_index,
)
from repro.core.stats import sief_stats, supplemental_bytes


@pytest.fixture
def built(paper_graph, paper_labeling):
    return SIEFBuilder(paper_graph, paper_labeling).build()


class TestStats:
    def test_counts(self, built, paper_graph, paper_labeling):
        index, report = built
        stats = sief_stats(index, report)
        assert stats.num_vertices == 11
        assert stats.num_cases == paper_graph.num_edges
        assert stats.original_entries == paper_labeling.total_entries()
        assert stats.supplemental_entries == (
            index.total_supplemental_entries()
        )

    def test_byte_model(self, built):
        index, _ = built
        assert supplemental_bytes(index) >= (
            index.total_supplemental_entries() * BYTES_PER_ENTRY
        )

    def test_ratio(self, built):
        index, report = built
        stats = sief_stats(index, report)
        assert stats.slen_over_olen == pytest.approx(
            stats.supplemental_entries / stats.original_entries
        )

    def test_total_bytes_is_sum(self, built):
        stats = sief_stats(built[0], built[1])
        assert stats.total_bytes == (
            stats.original_bytes + stats.supplemental_bytes
        )

    def test_without_report_uses_index_averages(self, built):
        index, report = built
        with_report = sief_stats(index, report)
        without = sief_stats(index)
        assert without.avg_affected_per_case == pytest.approx(
            with_report.avg_affected_per_case
        )

    def test_as_dict(self, built):
        d = sief_stats(built[0]).as_dict()
        assert {"supplemental_entries", "slen_over_olen", "total_bytes"} <= (
            set(d)
        )


class TestSerialize:
    def test_round_trip_structure(self, built):
        index, _ = built
        loaded = index_from_bytes(index_to_bytes(index))
        assert loaded.labeling == index.labeling
        assert loaded.num_cases == index.num_cases
        for edge, si in index.iter_cases():
            assert loaded.supplement(*edge) == si

    def test_round_trip_answers_queries(self, built, paper_graph):
        index, _ = built
        engine = SIEFQueryEngine(index_from_bytes(index_to_bytes(index)))
        for u, v in paper_graph.edges():
            truth = bfs_distances_avoiding_edge(paper_graph, 0, (u, v))
            for t in range(11):
                expected = truth[t] if truth[t] != UNREACHED else INF
                assert engine.distance(0, t, (u, v)) == expected

    def test_file_round_trip(self, built, tmp_path):
        index, _ = built
        path = tmp_path / "index.sief"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_cases == index.num_cases

    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            index_from_bytes(b"WRONGMAG" + b"\x00" * 32)

    def test_truncated(self, built):
        blob = index_to_bytes(built[0])
        with pytest.raises(SerializationError):
            index_from_bytes(blob[:40])

    def test_round_trip_random_graph(self):
        g = generators.erdos_renyi_gnm(16, 30, seed=17)
        index, _ = SIEFBuilder(g).build()
        loaded = index_from_bytes(index_to_bytes(index))
        for edge, si in index.iter_cases():
            assert loaded.supplement(*edge) == si
