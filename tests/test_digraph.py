"""Unit tests for DiGraph."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, GraphError
from repro.graph.digraph import DiGraph


def test_arcs_are_directed():
    g = DiGraph(3, [(0, 1)])
    assert g.has_arc(0, 1)
    assert not g.has_arc(1, 0)


def test_successors_predecessors():
    g = DiGraph(4, [(0, 1), (0, 2), (3, 0)])
    assert list(g.successors(0)) == [1, 2]
    assert list(g.predecessors(0)) == [3]
    assert g.out_degree(0) == 2
    assert g.in_degree(0) == 1


def test_antiparallel_arcs_allowed():
    g = DiGraph(2, [(0, 1), (1, 0)])
    assert g.num_arcs == 2


def test_duplicate_arc_rejected():
    g = DiGraph(2, [(0, 1)])
    with pytest.raises(GraphError):
        g.add_arc(0, 1)


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        DiGraph(2, [(1, 1)])


def test_remove_arc():
    g = DiGraph(2, [(0, 1)])
    g.remove_arc(0, 1)
    assert g.num_arcs == 0
    with pytest.raises(EdgeNotFound):
        g.remove_arc(0, 1)


def test_reverse():
    g = DiGraph(3, [(0, 1), (1, 2)])
    r = g.reverse()
    assert r.has_arc(1, 0) and r.has_arc(2, 1)
    assert not r.has_arc(0, 1)
    assert r.num_arcs == 2


def test_to_undirected_collapses_antiparallel():
    g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
    u = g.to_undirected()
    assert u.num_edges == 2
    assert u.has_edge(0, 1) and u.has_edge(1, 2)


def test_arcs_iteration():
    g = DiGraph(3, [(2, 0), (0, 1)])
    assert sorted(g.arcs()) == [(0, 1), (2, 0)]
