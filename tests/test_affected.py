"""Unit tests for affected-vertex identification (Algorithm 1, §4.2)."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.core.affected import (
    AffectedVertices,
    affected_by_definition,
    identify_affected,
)


class TestAlgorithm1:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_definition_oracle(self, seed):
        g = generators.erdos_renyi_gnm(22, 38, seed=seed)
        for u, v in g.edges():
            got = identify_affected(g, u, v)
            want_u, want_v = affected_by_definition(g, u, v)
            assert list(got.side_u) == sorted(want_u), (u, v)
            assert list(got.side_v) == sorted(want_v), (u, v)

    def test_endpoints_always_affected(self, two_triangles):
        for u, v in two_triangles.edges():
            av = identify_affected(two_triangles, u, v)
            assert u in av.side_u
            assert v in av.side_v

    def test_sides_disjoint(self):
        g = generators.barabasi_albert(40, 2, seed=5)
        for u, v in g.edges():
            av = identify_affected(g, u, v)
            assert not set(av.side_u) & set(av.side_v)

    def test_precomputed_vectors_give_same_answer(self, paper_graph):
        du = bfs_distances(paper_graph, 0)
        d8 = bfs_distances(paper_graph, 8)
        a = identify_affected(paper_graph, 0, 8)
        b = identify_affected(paper_graph, 0, 8, dist_u=du, dist_v=d8)
        assert a == b

    def test_missing_edge_rejected(self, paper_graph):
        with pytest.raises(EdgeNotFound):
            identify_affected(paper_graph, 0, 9)

    def test_bridge_sets_disconnected_flag(self, two_triangles):
        av = identify_affected(two_triangles, 2, 3)
        assert av.disconnected
        # Bridge: every vertex changes distance to the other side.
        assert av.side_u == (0, 1, 2)
        assert av.side_v == (3, 4, 5)

    def test_non_bridge_not_disconnected(self, cycle6):
        av = identify_affected(cycle6, 0, 1)
        assert not av.disconnected

    def test_cycle_failure_affects_far_half(self, cycle6):
        # Failing (0,1) on C6: vertices near 0 change distance to 1 and
        # vice versa.
        av = identify_affected(cycle6, 0, 1)
        assert 0 in av.side_u and 1 in av.side_v
        assert av.total >= 2


class TestLemmaProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_lemma7_membership_equation(self, seed):
        """Every w in AV(u) satisfies d_G(w, v) == d_G(w, u) + 1."""
        g = generators.erdos_renyi_gnm(20, 34, seed=seed)
        for u, v in list(g.edges())[:12]:
            av = identify_affected(g, u, v)
            du = bfs_distances(g, u)
            dv = bfs_distances(g, v)
            for w in av.side_u:
                assert dv[w] == du[w] + 1
            for w in av.side_v:
                assert du[w] == dv[w] + 1

    @pytest.mark.parametrize("seed", range(5))
    def test_same_side_distances_unchanged(self, seed):
        """§4.2: for s, t in the same affected side, d_G == d_{G'}."""
        from repro.graph.traversal import bfs_distances_avoiding_edge

        g = generators.erdos_renyi_gnm(18, 30, seed=seed)
        for u, v in list(g.edges())[:8]:
            av = identify_affected(g, u, v)
            for s in av.side_u:
                before = bfs_distances(g, s)
                after = bfs_distances_avoiding_edge(g, s, (u, v))
                for t in av.side_u:
                    assert before[t] == after[t]


class TestContains:
    def test_membership_lookup(self, paper_graph):
        av = identify_affected(paper_graph, 0, 8)
        assert av.contains(0) == "u"
        assert av.contains(2) == "u"
        assert av.contains(8) == "v"
        assert av.contains(5) is None

    def test_total(self):
        av = AffectedVertices(u=0, v=1, side_u=(0, 2), side_v=(1,))
        assert av.total == 3
