"""Tests *of* the conformance harness itself (``repro.testing``).

A differential fuzzer is only trustworthy if the harness around it is:
the oracles must be right, the registries complete, the shrinker must
preserve mismatches while minimizing, the corpus must roundtrip — and,
most importantly, the whole loop must actually *catch* an injected bug
and shrink it to a debuggable size.  That last property is checked here
by monkeypatching an off-by-one into the Case-4 evaluation and running
the real fuzz loop against it.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

import repro.core.query as core_query
from repro.graph.graph import Graph
from repro.graph.digraph import DiGraph
from repro.graph.weighted import WeightedGraph
from repro.testing import (
    ADAPTERS,
    GENERATORS,
    ORDERING_NAMES,
    Counterexample,
    FuzzConfig,
    fuzz,
    iter_corpus,
    load_counterexample,
    parse_budget,
    recheck,
    save_counterexample,
    shrink,
)
from repro.testing import oracles
from repro.testing.corpus import corpus_name, from_payload, to_payload

INF = math.inf


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------


class TestRegistries:
    def test_adapter_coverage_floor(self):
        """ISSUE acceptance: at least 8 engines behind the protocol."""
        assert len(ADAPTERS) >= 8

    def test_adapters_span_families_and_failure_kinds(self):
        families = {a.family for a in ADAPTERS.values()}
        kinds = {a.failure_kind for a in ADAPTERS.values()}
        assert families == {"undirected", "weighted", "directed"}
        assert kinds == {"edge", "arc", "node", "dual"}

    def test_generator_coverage_floor(self):
        """ISSUE acceptance: at least 5 graph families."""
        assert len(GENERATORS) >= 5
        assert {"er", "ba", "ws", "grid", "tree", "disconnected"} <= set(
            GENERATORS
        )

    def test_every_ordering_strategy_is_cycled(self):
        from repro.order.strategies import STRATEGIES

        assert set(ORDERING_NAMES) == set(STRATEGIES)

    def test_adapter_names_match_registry_keys(self):
        for name, adapter in ADAPTERS.items():
            assert adapter.name == name


# ---------------------------------------------------------------------------
# Oracles — checked against hand-computed answers
# ---------------------------------------------------------------------------


class TestOracles:
    def test_undirected_truth_on_cycle(self):
        # C4: cutting (0, 1) forces the long way round.
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        pairs = [(0, 1), (1, 0), (0, 2), (0, 0)]
        assert oracles.undirected_truth(g, (0, 1), pairs) == [3.0, 3.0, 2.0, 0.0]

    def test_undirected_truth_bridge_disconnects(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        out = oracles.undirected_truth(g, (1, 2), [(0, 3), (0, 1), (2, 3)])
        assert out == [INF, 1.0, 1.0]

    def test_weighted_truth_prefers_light_detour(self):
        # Direct edge weight 5, detour 0.5 + 0.5 = 1.
        wg = WeightedGraph(3, [(0, 1, 5.0), (0, 2, 0.5), (2, 1, 0.5)])
        out = oracles.weighted_truth(wg, (0, 2), [(0, 1), (0, 2)])
        assert out == [5.0, 5.5]

    def test_directed_truth_respects_orientation(self):
        # Directed triangle 0→1→2→0; failing 0→1 leaves only the long way.
        dg = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        out = oracles.directed_truth(dg, (0, 1), [(0, 1), (1, 0), (0, 2)])
        assert out == [INF, 2.0, INF]

    def test_node_truth_excludes_failed_vertex_paths(self):
        # Star around 1 plus a bypass 0-2: removing 1 keeps 0-2 only.
        g = Graph(4, [(0, 1), (1, 2), (1, 3), (0, 2)])
        out = oracles.node_truth(g, 1, [(0, 2), (0, 3), (2, 0)])
        assert out == [1.0, INF, 1.0]

    def test_dual_truth_removes_both_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        out = oracles.dual_truth(g, (0, 1), (0, 2), [(0, 2), (0, 1)])
        assert out == [2.0, 3.0]

    def test_no_failure_truth_matches_bfs(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        out = oracles.no_failure_truth(g, [(0, 2), (0, 3), (4, 3)])
        assert out == [2.0, INF, 1.0]


# ---------------------------------------------------------------------------
# Budget parsing and config validation
# ---------------------------------------------------------------------------


class TestConfig:
    @pytest.mark.parametrize(
        "text,seconds",
        [("30s", 30.0), ("2m", 120.0), ("45", 45.0), ("500ms", 0.5)],
    )
    def test_parse_budget(self, text, seconds):
        assert parse_budget(text) == seconds

    def test_parse_budget_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_budget("soon")

    def test_unknown_adapter_rejected(self):
        with pytest.raises(ValueError, match="unknown adapters"):
            fuzz(budget_seconds=0.1, adapters=["sief-scalar", "nope"])

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generators"):
            fuzz(budget_seconds=0.1, generators=["er", "nope"])

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            fuzz(FuzzConfig(), seed=1)


# ---------------------------------------------------------------------------
# A clean mini fuzz run
# ---------------------------------------------------------------------------


class TestMiniFuzz:
    def test_clean_run_is_green_and_deterministic(self):
        config = dict(
            seed=11,
            budget_seconds=600.0,
            max_rounds=4,
            adapters=["sief-scalar", "sief-batch", "bfs-baseline"],
            generators=["er", "tree"],
            do_shrink=False,
        )
        report = fuzz(**config)
        assert report.ok
        assert report.rounds == 4
        assert report.failures_checked > 0
        assert report.queries_checked > 0
        assert report.adapters_covered == {
            "sief-scalar", "sief-batch", "bfs-baseline",
        }
        assert report.generators_covered == {"er", "tree"}
        assert "no mismatches" in report.summary()
        # Same seed, same coverage counts: the loop is reproducible.
        again = fuzz(**config)
        assert again.queries_checked == report.queries_checked
        assert again.failures_checked == report.failures_checked


# ---------------------------------------------------------------------------
# Corpus serialization
# ---------------------------------------------------------------------------


def _sample_cx(**overrides):
    base = Counterexample(
        adapter="sief-scalar",
        family="undirected",
        num_vertices=3,
        edges=[(0, 1), (0, 2), (1, 2)],
        failure=("edge", 0, 1),
        s=0,
        t=1,
        ordering="closeness",
        ordering_seed=7,
        expected=2.0,
        got=3.0,
        provenance={"seed": 0, "round": 4, "generator": "er"},
    )
    return replace(base, **overrides)


class TestCorpus:
    def test_payload_roundtrip(self):
        cx = _sample_cx()
        assert from_payload(to_payload(cx)) == cx

    def test_payload_roundtrip_dual_failure_and_inf(self):
        cx = _sample_cx(
            adapter="dual-oracle",
            failure=("dual", (0, 1), (1, 2)),
            expected=INF,
            got=math.nan,
        )
        back = from_payload(to_payload(cx))
        assert back.failure == ("dual", (0, 1), (1, 2))
        assert back.expected == INF
        assert math.isnan(back.got)

    def test_payload_is_json_safe(self):
        cx = _sample_cx(expected=INF)
        text = json.dumps(to_payload(cx))  # must not need allow_nan tricks
        assert '"inf"' in text

    def test_unsupported_format_rejected(self):
        payload = to_payload(_sample_cx())
        payload["format"] = 99
        with pytest.raises(ValueError, match="format"):
            from_payload(payload)

    def test_name_ignores_provenance_and_got(self):
        a = _sample_cx()
        b = _sample_cx(got=4.0, provenance={"seed": 9, "round": 1})
        c = _sample_cx(t=2)
        assert corpus_name(a) == corpus_name(b)
        assert corpus_name(a) != corpus_name(c)

    def test_save_load_iter(self, tmp_path):
        cx = _sample_cx()
        path = save_counterexample(cx, tmp_path)
        assert path.parent == tmp_path
        assert load_counterexample(path) == cx
        # Idempotent: saving again lands on the same file.
        assert save_counterexample(cx, tmp_path) == path
        listing = list(iter_corpus(tmp_path))
        assert listing == [(path, cx)]

    def test_iter_missing_directory_is_empty(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nowhere")) == []


# ---------------------------------------------------------------------------
# Recheck and shrink
# ---------------------------------------------------------------------------


def _install_off_by_one(monkeypatch):
    """Inject the ISSUE's acceptance bug: Case 4 answers are one too big."""
    original = core_query._case4_eval

    def buggy(labeling, sl, low):
        d = original(labeling, sl, low)
        return d if math.isinf(d) else d + 1

    monkeypatch.setattr(core_query, "_case4_eval", buggy)


class TestRecheck:
    def test_correct_code_has_no_mismatch(self):
        result = recheck(_sample_cx())
        assert not result.mismatch
        assert result.expected == 2.0 == result.got

    def test_crash_counts_as_mismatch(self):
        result = recheck(_sample_cx(s=99))  # out-of-range query vertex
        assert result.mismatch
        assert result.error is not None

    def test_injected_bug_rechecks_as_mismatch(self, monkeypatch):
        _install_off_by_one(monkeypatch)
        result = recheck(_sample_cx())
        assert result.mismatch
        assert result.expected == 2.0
        assert result.got == 3.0


class TestShrink:
    def test_shrink_strips_irrelevant_structure(self, monkeypatch):
        """A triangle counterexample padded with a dangling path and a
        chord must shrink back down, keeping failure and query pinned."""
        _install_off_by_one(monkeypatch)
        fat = _sample_cx(
            num_vertices=6,
            edges=[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
        )
        assert recheck(fat).mismatch  # the padding kept it failing
        slim = shrink(fat)
        assert slim.num_vertices == 3
        assert len(slim.edges) == 3
        assert slim.failure == ("edge", 0, 1)
        assert (slim.s, slim.t) == (0, 1)
        assert recheck(slim).mismatch  # still a counterexample

    def test_shrink_is_identity_on_minimal_case(self, monkeypatch):
        _install_off_by_one(monkeypatch)
        cx = _sample_cx()
        slim = shrink(cx)
        assert slim.num_vertices == cx.num_vertices
        assert slim.edges == cx.edges

    def test_shrink_respects_check_budget(self, monkeypatch):
        _install_off_by_one(monkeypatch)
        fat = _sample_cx(
            num_vertices=6,
            edges=[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
        )
        slim = shrink(fat, max_checks=0)
        assert slim.num_vertices == fat.num_vertices  # no budget, no moves


# ---------------------------------------------------------------------------
# End to end: the fuzzer catches an injected bug and shrinks it
# ---------------------------------------------------------------------------


class TestInjectedBugEndToEnd:
    def test_fuzzer_catches_and_shrinks_case4_off_by_one(
        self, monkeypatch, tmp_path
    ):
        _install_off_by_one(monkeypatch)
        report = fuzz(
            seed=0,
            budget_seconds=120.0,
            adapters=["sief-scalar"],
            generators=["er"],
            corpus_dir=str(tmp_path),
            max_counterexamples=1,
            shrink_checks=300,
        )
        assert not report.ok
        assert len(report.counterexamples) == 1
        cx = report.counterexamples[0]
        # ISSUE acceptance: shrunk to a ≤ 12-vertex counterexample.
        assert cx.num_vertices <= 12
        assert cx.got == cx.expected + 1  # the injected off-by-one, exactly
        assert cx.provenance["generator"] == "er"
        # Persisted, content-addressed, and replayable from disk.
        assert report.corpus_paths
        saved = load_counterexample(report.corpus_paths[0])
        assert recheck(saved).mismatch
        assert "MISMATCHES" in report.summary()

        # With the bug reverted the same corpus file rechecks clean —
        # exactly the regression-replay contract tests/test_corpus.py
        # enforces for every file in tests/corpus/.
        monkeypatch.undo()
        assert not recheck(saved).mismatch
