"""Unit tests for path reconstruction from labelings and SIEF indexes."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.graph import normalize_edge
from repro.graph.traversal import bfs_distance_between
from repro.labeling.pll import build_pll
from repro.labeling.paths import (
    failure_shortest_path,
    hub_of_pair,
    shortest_path_via_labeling,
)
from repro.labeling.query import dist_query
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine


def _assert_valid_path(graph, path, s, t, expected_len, forbidden=None):
    assert path[0] == s and path[-1] == t
    assert len(path) - 1 == expected_len
    for a, b in zip(path, path[1:]):
        assert graph.has_edge(a, b), (a, b)
        if forbidden is not None:
            assert normalize_edge(a, b) != normalize_edge(*forbidden)


class TestStaticPaths:
    @pytest.mark.parametrize("seed", range(6))
    def test_paths_match_bfs_distance(self, seed):
        g = generators.erdos_renyi_gnm(22, 40, seed=seed)
        labeling = build_pll(g)
        for s in range(0, 22, 3):
            for t in range(0, 22, 4):
                expected = bfs_distance_between(g, s, t)
                path = shortest_path_via_labeling(g, labeling, s, t)
                if expected == -1:
                    assert path is None
                else:
                    _assert_valid_path(g, path, s, t, expected)

    def test_trivial_path(self, paper_graph, paper_labeling):
        assert shortest_path_via_labeling(
            paper_graph, paper_labeling, 4, 4
        ) == [4]

    def test_disconnected_returns_none(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        labeling = build_pll(g)
        assert shortest_path_via_labeling(g, labeling, 0, 3) is None


class TestFailurePaths:
    @pytest.mark.parametrize("seed", range(5))
    def test_paths_avoid_failed_edge(self, seed):
        g = generators.erdos_renyi_gnm(18, 32, seed=seed)
        index, _ = SIEFBuilder(g).build()
        engine = SIEFQueryEngine(index)
        for edge in list(g.edges())[:6]:
            for s in range(0, 18, 4):
                for t in range(0, 18, 5):
                    expected = bfs_distance_between(g, s, t, avoid=edge)
                    path = failure_shortest_path(g, engine, s, t, edge)
                    if expected == -1:
                        assert path is None
                    else:
                        _assert_valid_path(
                            g, path, s, t, expected, forbidden=edge
                        )

    def test_detour_around_cycle(self, cycle6):
        index, _ = SIEFBuilder(cycle6).build()
        engine = SIEFQueryEngine(index)
        path = failure_shortest_path(cycle6, engine, 0, 1, (0, 1))
        assert path == [0, 5, 4, 3, 2, 1]

    def test_bridge_failure_gives_none(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        engine = SIEFQueryEngine(index)
        assert failure_shortest_path(
            two_triangles, engine, 0, 5, (2, 3)
        ) is None


class TestHubOfPair:
    def test_paper_example(self, paper_labeling):
        # Lemma 3 walk-through: vertex 0 is the min-order hub of (1, 6).
        assert hub_of_pair(paper_labeling, 1, 6) == 0

    def test_hub_on_shortest_path(self):
        g = generators.erdos_renyi_gnm(20, 36, seed=9)
        labeling = build_pll(g)
        from repro.graph.traversal import bfs_distances

        for s in range(0, 20, 3):
            d_s = bfs_distances(g, s)
            for t in range(0, 20, 4):
                hub = hub_of_pair(labeling, s, t)
                if hub is None:
                    continue
                d_t = bfs_distances(g, t)
                assert d_s[hub] + d_t[hub] == dist_query(labeling, s, t)

    def test_no_common_hub(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        labeling = build_pll(g)
        assert hub_of_pair(labeling, 0, 2) is None
