"""Edge-case audit for the batch query entry points (ISSUE 2 satellite).

``batch_dist_query`` and ``SIEFQueryEngine.batch_query`` must behave
like the scalar paths on every degenerate input: empty pair lists, all
``s == t`` pairs, duplicated pairs — and malformed input (out-of-range
or negative ids, wrong shapes) must raise one clear exception instead
of a numpy index error from deep inside the join, or worse, silently
wrong answers from negative-index wraparound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_sief
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import batch_dist_query, validate_pairs


@pytest.fixture(scope="module")
def world():
    g = generators.erdos_renyi_gnm(18, 30, seed=7)
    labeling = build_pll(g)
    index = build_sief(g, labeling)
    return g, labeling, index, SIEFQueryEngine(index)


class TestValidatePairs:
    def test_empty_is_allowed(self):
        p = validate_pairs([], 10)
        assert p.shape == (0, 2)

    def test_wrong_shape_raises_value_error(self):
        with pytest.raises(ValueError, match="shape"):
            validate_pairs([1, 2, 3], 10)
        with pytest.raises(ValueError, match="shape"):
            validate_pairs([[1, 2, 3]], 10)

    def test_out_of_range_raises_index_error_with_range(self):
        with pytest.raises(IndexError, match=r"\[0, 9\]"):
            validate_pairs([(0, 10)], 10)

    def test_negative_raises_index_error(self):
        with pytest.raises(IndexError, match="out of range"):
            validate_pairs([(-1, 3)], 10)


class TestBatchDistQuery:
    def test_empty_pairs(self, world):
        _g, labeling, _index, _engine = world
        out = batch_dist_query(labeling, [])
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_all_self_pairs(self, world):
        _g, labeling, _index, _engine = world
        pairs = [(v, v) for v in range(labeling.num_vertices)]
        assert (batch_dist_query(labeling, pairs) == 0.0).all()

    def test_small_batch_out_of_range_is_clear(self, world):
        """The k < scalar-threshold shortcut must validate too."""
        _g, labeling, _index, _engine = world
        n = labeling.num_vertices
        with pytest.raises(IndexError, match="out of range"):
            batch_dist_query(labeling, [(0, n)])

    def test_small_batch_negative_is_clear(self, world):
        """Negative ids must not wrap around to valid vertices."""
        _g, labeling, _index, _engine = world
        with pytest.raises(IndexError, match="out of range"):
            batch_dist_query(labeling, [(-1, 2)])

    def test_large_batch_out_of_range_is_clear(self, world):
        _g, labeling, _index, _engine = world
        n = labeling.num_vertices
        pairs = [(0, 1)] * 50 + [(n + 3, 0)]
        with pytest.raises(IndexError, match="out of range"):
            batch_dist_query(labeling, pairs)


class TestEngineBatchQuery:
    def _edge(self, world):
        g = world[0]
        return next(iter(g.edges()))

    def test_empty_pairs(self, world):
        _g, _labeling, _index, engine = world
        out = engine.batch_query(self._edge(world), [])
        assert out.shape == (0,)

    def test_all_self_pairs(self, world):
        g, _labeling, _index, engine = world
        pairs = [(v, v) for v in range(g.num_vertices)]
        assert (engine.batch_query(self._edge(world), pairs) == 0.0).all()

    def test_out_of_range_raises_index_error(self, world):
        g, _labeling, _index, engine = world
        with pytest.raises(IndexError, match="out of range"):
            engine.batch_query(self._edge(world), [(0, g.num_vertices)])

    def test_negative_raises_index_error(self, world):
        """Before the fix a negative id wrapped through searchsorted
        membership and produced a silently wrong distance."""
        _g, _labeling, _index, engine = world
        with pytest.raises(IndexError, match="out of range"):
            engine.batch_query(self._edge(world), [(-2, 1), (0, 1)])

    def test_wrong_shape_raises_value_error(self, world):
        _g, _labeling, _index, engine = world
        with pytest.raises(ValueError, match="shape"):
            engine.batch_query(self._edge(world), [1, 2])

    def test_matches_scalar_on_duplicates(self, world):
        g, _labeling, _index, engine = world
        edge = self._edge(world)
        pairs = [(0, 5), (0, 5), (5, 0), (3, 3)]
        batch = engine.batch_query(edge, pairs)
        for got, (s, t) in zip(batch, pairs):
            assert got == engine.distance(s, t, edge)
