"""Unit tests for closeness centrality and its failure sensitivity."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.pll import build_pll
from repro.core.builder import SIEFBuilder
from repro.analysis.centrality import (
    centrality_sensitivity,
    closeness_centrality,
    closeness_under_failure,
)


def closeness_by_bfs(graph, v, avoid=None):
    from repro.graph.traversal import bfs_distances_avoiding_edge

    if avoid is None:
        dist = bfs_distances(graph, v)
    else:
        dist = bfs_distances_avoiding_edge(graph, v, avoid)
    finite = [d for w, d in enumerate(dist) if w != v and d != UNREACHED]
    return len(finite) / sum(finite) if finite and sum(finite) else 0.0


class TestCloseness:
    def test_matches_bfs_definition(self):
        g = generators.erdos_renyi_gnm(20, 36, seed=14)
        labeling = build_pll(g)
        scores = closeness_centrality(labeling)
        for v in range(20):
            assert scores[v] == pytest.approx(closeness_by_bfs(g, v))

    def test_star_center_most_central(self, star7):
        scores = closeness_centrality(build_pll(star7))
        assert scores[0] == max(scores.values())

    def test_isolated_vertex_scores_zero(self):
        g = Graph(4, [(0, 1), (0, 2)])
        scores = closeness_centrality(build_pll(g))
        assert scores[3] == 0.0

    def test_vertex_restriction(self, cycle6):
        scores = closeness_centrality(build_pll(cycle6), vertices=[0, 3])
        assert set(scores) == {0, 3}

    def test_sampling_deterministic(self):
        g = generators.barabasi_albert(60, 3, seed=15)
        labeling = build_pll(g)
        a = closeness_centrality(labeling, sample=20, seed=2)
        b = closeness_centrality(labeling, sample=20, seed=2)
        assert a == b


class TestUnderFailure:
    def test_matches_bfs_on_reduced_graph(self):
        g = generators.erdos_renyi_gnm(16, 28, seed=16)
        index, _ = SIEFBuilder(g).build()
        edge = next(iter(g.edges()))
        scores = closeness_under_failure(index, edge, vertices=range(16))
        for v in range(16):
            assert scores[v] == pytest.approx(
                closeness_by_bfs(g, v, avoid=edge)
            )

    def test_bridge_failure_halves_reach(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        before = closeness_centrality(index.labeling, vertices=[0])[0]
        after = closeness_under_failure(index, (2, 3), vertices=[0])[0]
        assert after > 0
        # Vertex 0 now reaches only its own triangle; with the far side
        # gone the distance *sum* shrinks faster than the reach count,
        # but reachability dropped from 5 to 2 vertices.
        assert before != after


class TestSensitivity:
    def test_ranked_by_relative_drop(self):
        g = generators.erdos_renyi_gnm(18, 30, seed=17)
        index, _ = SIEFBuilder(g).build()
        edge = max(
            index.supplements,
            key=lambda e: index.supplement(*e).affected.total,
        )
        shifts = centrality_sensitivity(index, edge, top=5)
        drops = [s.relative_drop for s in shifts]
        assert drops == sorted(drops, reverse=True)
        for s in shifts:
            assert s.after <= s.before + 1e-12 or s.relative_drop == 0.0

    def test_default_scores_affected_vertices_only(self, paper_graph):
        index, _ = SIEFBuilder(paper_graph).build()
        shifts = centrality_sensitivity(index, (0, 8), top=20)
        scored = {s.vertex for s in shifts}
        affected = set(index.supplement(0, 8).affected.side_u) | set(
            index.supplement(0, 8).affected.side_v
        )
        assert scored <= affected

    def test_empty_vertex_list_rejected(self, paper_graph):
        index, _ = SIEFBuilder(paper_graph).build()
        with pytest.raises(ReproError):
            centrality_sensitivity(index, (0, 8), vertices=[])
