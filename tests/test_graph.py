"""Unit tests for the core undirected Graph type."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound
from repro.graph.graph import Graph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_range(self):
        g = Graph(5)
        assert list(g.vertices()) == [0, 1, 2, 3, 4]

    def test_constructor_edges(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)


class TestEdges:
    def test_add_and_has_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_edges_iteration_canonical(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.add_edge(1, 0)

    def test_vertex_out_of_range(self):
        g = Graph(3)
        with pytest.raises(VertexNotFound):
            g.add_edge(0, 3)
        with pytest.raises(VertexNotFound):
            g.neighbors(-1)

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(0, 2)

    def test_remove_self_loop_query_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(1, 1)


class TestDerivedViews:
    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1 and h.num_edges == 2

    def test_without_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        h = g.without_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not h.has_edge(0, 1)
        assert h.num_edges == 1

    def test_subgraph_relabels_densely(self):
        g = Graph(6, [(0, 2), (2, 4), (4, 0), (1, 3)])
        sub, mapping = g.subgraph([0, 2, 4])
        assert sub.num_vertices == 3
        assert mapping == [0, 2, 4]
        assert sorted(sub.edges()) == [(0, 1), (1, 2), (0, 2)] or sorted(
            sub.edges()
        ) == [(0, 1), (0, 2), (1, 2)]

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b
        assert a != c

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))

    def test_repr_mentions_sizes(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)
    assert normalize_edge(3, 3) == (3, 3)


def test_adjacency_exposes_sorted_lists():
    g = Graph(4, [(1, 3), (1, 0), (1, 2)])
    adj = g.adjacency()
    assert adj[1] == [0, 2, 3]
    assert adj[0] == [1]
