"""Weighted SIEF edge cases: ties, useless edges, float tolerance."""

from __future__ import annotations

import pytest

from repro.graph.weighted import WeightedGraph
from repro.graph.traversal import dijkstra_distances
from repro.failures.weighted import (
    EPS,
    build_weighted_sief,
    close,
    identify_affected_weighted,
)


class TestUselessEdges:
    def test_heavier_than_detour_affects_nobody(self):
        # 0-1 weighs 10; the detour 0-2-1 weighs 2.
        wg = WeightedGraph(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        av = identify_affected_weighted(wg, 0, 1)
        assert av.side_u == () and av.side_v == ()
        index = build_weighted_sief(wg)
        assert index.distance(0, 1, (0, 1)) == 2.0

    def test_equal_weight_alternative_affects_nobody(self):
        # The removed edge ties with the detour: distances survive.
        wg = WeightedGraph(3, [(0, 1, 2.0), (0, 2, 1.0), (2, 1, 1.0)])
        av = identify_affected_weighted(wg, 0, 1)
        assert av.side_u == () and av.side_v == ()
        index = build_weighted_sief(wg)
        assert index.distance(0, 1, (0, 1)) == 2.0

    def test_strictly_cheaper_edge_affects_endpoints(self):
        wg = WeightedGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (2, 1, 1.0)])
        av = identify_affected_weighted(wg, 0, 1)
        assert 0 in av.side_u and 1 in av.side_v


class TestFloatTies:
    def test_sum_chains_within_tolerance(self):
        # 0.1-style weights whose sums accumulate rounding error.
        w = 0.1
        wg = WeightedGraph(6)
        for i in range(5):
            wg.add_edge(i, i + 1, w)
        wg.add_edge(0, 5, 0.5)  # ties with the 5-hop chain exactly-ish
        av = identify_affected_weighted(wg, 0, 5)
        # 0.5 vs 5*0.1: equal up to float noise -> nobody affected.
        assert av.side_u == () and av.side_v == ()

    def test_close_tolerance_scales(self):
        big = 1e9
        assert close(big, big * (1 + EPS / 2))
        assert not close(big, big * (1 + 1e-6))


class TestWeightedQueriesMisc:
    def test_every_edge_indexed(self):
        wg = WeightedGraph(
            4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 2.5)]
        )
        index = build_weighted_sief(wg)
        assert len(index.supplements) == 4

    def test_self_distance(self):
        wg = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        index = build_weighted_sief(wg)
        assert index.distance(1, 1, (0, 1)) == 0.0

    def test_mixed_weights_exact(self):
        wg = WeightedGraph(
            5,
            [
                (0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (3, 4, 0.5),
                (0, 4, 1.5), (1, 3, 2.0),
            ],
        )
        index = build_weighted_sief(wg)
        for u, v, _w in wg.edges():
            for s in range(5):
                truth = dijkstra_distances(wg, s, avoid=(u, v))
                for t in range(5):
                    assert index.distance(s, t, (u, v)) == pytest.approx(
                        truth[t]
                    )
