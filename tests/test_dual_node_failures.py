"""Unit tests for the dual-edge and node failure oracles (future work)."""

from __future__ import annotations

import itertools

import pytest

from repro.exceptions import ReproError
from repro.graph import generators
from repro.labeling.query import INF
from repro.core.builder import SIEFBuilder
from repro.failures.dual import DualFailureOracle
from repro.failures.node import NodeFailureOracle
from repro.failures.search import bfs_distance_avoiding


@pytest.fixture(scope="module")
def setup():
    g = generators.erdos_renyi_gnm(18, 32, seed=6)
    index, _ = SIEFBuilder(g).build()
    return g, index


class TestDualFailure:
    def test_exact_against_bfs(self, setup):
        g, index = setup
        oracle = DualFailureOracle(g, index)
        edges = list(g.edges())
        for e1, e2 in itertools.islice(itertools.combinations(edges, 2), 40):
            for s, t in [(0, 9), (3, 14), (5, 17)]:
                expected = bfs_distance_avoiding(
                    g, s, t, avoid_edges=(e1, e2)
                )
                assert oracle.distance(s, t, e1, e2) == expected

    def test_lower_bound_is_valid(self, setup):
        g, index = setup
        oracle = DualFailureOracle(g, index)
        edges = list(g.edges())
        for e1, e2 in itertools.islice(itertools.combinations(edges, 2), 30):
            bound = oracle.lower_bound(2, 11, e1, e2)
            exact = bfs_distance_avoiding(g, 2, 11, avoid_edges=(e1, e2))
            assert bound <= exact

    def test_counters_track_calls(self, setup):
        g, index = setup
        oracle = DualFailureOracle(g, index)
        edges = list(g.edges())
        oracle.distance(0, 5, edges[0], edges[1])
        oracle.distance(1, 6, edges[2], edges[3])
        assert oracle.calls == 2
        assert 0.0 <= oracle.tightness_rate <= 1.0

    def test_disconnect_shortcut(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        oracle = DualFailureOracle(two_triangles, index)
        # (2,3) alone already disconnects; the oracle must not run BFS.
        assert oracle.distance(0, 5, (2, 3), (0, 1)) == INF
        assert oracle.disconnect_shortcuts == 1
        assert oracle.bfs_runs == 0

    def test_parallel_shortest_paths_break_naive_assumption(self):
        """The counterexample that makes dual-failure genuinely hard: each
        single failure alone changes nothing, both together do."""
        # Two vertex-disjoint 2-hop paths between 0 and 3.
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        index, _ = SIEFBuilder(g).build()
        oracle = DualFailureOracle(g, index)
        e1, e2 = (0, 1), (0, 2)
        assert oracle.engine.distance(0, 3, e1) == 2
        assert oracle.engine.distance(0, 3, e2) == 2
        assert oracle.lower_bound(0, 3, e1, e2) == 2  # bound not tight
        assert oracle.distance(0, 3, e1, e2) == INF


class TestNodeFailure:
    def test_exact_against_bfs(self, setup):
        g, index = setup
        oracle = NodeFailureOracle(g, index)
        for w in range(0, 18, 2):
            for s, t in [(1, 9), (3, 15)]:
                if w in (s, t):
                    continue
                expected = bfs_distance_avoiding(
                    g, s, t, avoid_vertices=(w,)
                )
                assert oracle.distance(s, t, w) == expected

    def test_lower_bound_is_valid(self, setup):
        g, index = setup
        oracle = NodeFailureOracle(g, index)
        for w in range(1, 18, 3):
            if w in (0, 9):
                continue
            bound = oracle.lower_bound(0, 9, w)
            exact = bfs_distance_avoiding(g, 0, 9, avoid_vertices=(w,))
            assert bound <= exact

    def test_failed_endpoint_rejected(self, setup):
        g, index = setup
        oracle = NodeFailureOracle(g, index)
        with pytest.raises(ReproError):
            oracle.distance(3, 7, 3)

    def test_cut_vertex_disconnects(self, two_triangles):
        index, _ = SIEFBuilder(two_triangles).build()
        oracle = NodeFailureOracle(two_triangles, index)
        assert oracle.distance(0, 5, 2) == INF  # 2 is the articulation point
        assert oracle.distance(0, 1, 4) == 1

    def test_isolated_vertex_lower_bound_uses_original(self):
        from repro.graph.graph import Graph

        g = Graph(4, [(0, 1), (1, 2)])
        index, _ = SIEFBuilder(g).build()
        oracle = NodeFailureOracle(g, index)
        # Vertex 3 is isolated: removing it changes nothing.
        assert oracle.lower_bound(0, 2, 3) == 2
        assert oracle.distance(0, 2, 3) == 2
