"""Unit tests for the metrics primitives in :mod:`repro.obs.metrics`.

Everything here is deterministic: histograms use fixed bucket edges and
the tests observe hand-picked values, so no assertion depends on
wall-clock behaviour.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_SECONDS_EDGES,
    MetricsRegistry,
    SIZE_EDGES,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(-7)
        assert g.value == -7


class TestHistogram:
    def test_requires_strictly_increasing_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    def test_bucket_assignment_le_semantics(self):
        h = Histogram("h", edges=(1.0, 10.0, 100.0))
        # Prometheus `le`: a value equal to an edge lands in that bucket.
        h.observe(0.5)  # <= 1
        h.observe(1.0)  # <= 1 (boundary)
        h.observe(5.0)  # <= 10
        h.observe(100.0)  # <= 100 (boundary)
        h.observe(1e9)  # +Inf overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.0 + 5.0 + 100.0 + 1e9)

    def test_size_edges_start_at_zero(self):
        h = Histogram("h", edges=SIZE_EDGES)
        h.observe(0)
        assert h.counts[0] == 1


class TestMetricsRegistry:
    def test_instruments_are_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_name_collisions_across_kinds_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        assert reg.histogram("h", edges=(1.0, 2.0)) is reg.histogram("h")
        with pytest.raises(ValueError):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_default_histogram_edges_are_latency_edges(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").edges == tuple(LATENCY_SECONDS_EDGES)

    def test_counter_value_missing_is_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("nope") == 0
        reg.counter("yes").inc(3)
        assert reg.counter_value("yes") == 3

    def test_len_counts_instruments(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        assert len(reg) == 3

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        h = snap["histograms"]["h"]
        assert h["edges"] == [1.0]
        assert h["counts"] == [1, 0]
        assert h["sum"] == 0.5
        # Snapshot is decoupled from later mutation.
        reg.counter("c").inc()
        assert snap["counters"] == {"c": 2}


class TestMerge:
    def _populated(self, counter=1, gauge=1.0, obs=(0.5,)):
        reg = MetricsRegistry()
        reg.counter("c").inc(counter)
        reg.gauge("g").set(gauge)
        h = reg.histogram("h", edges=(1.0, 2.0))
        for v in obs:
            h.observe(v)
        return reg

    def test_counters_add_and_gauges_last_write(self):
        a = self._populated(counter=2, gauge=1.0)
        b = self._populated(counter=5, gauge=9.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter_value("c") == 7
        assert a.gauge("g").value == 9.0

    def test_histogram_buckets_add(self):
        a = self._populated(obs=(0.5, 1.5))
        b = self._populated(obs=(0.5, 5.0))
        a.merge_snapshot(b.snapshot())
        h = a.histogram("h", edges=(1.0, 2.0))
        assert h.counts == [2, 1, 1]
        assert h.sum == pytest.approx(0.5 + 1.5 + 0.5 + 5.0)

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1.0, 2.0))
        b = MetricsRegistry()
        b.histogram("h", edges=(1.0, 3.0)).observe(0.1)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_merge_registry_object(self):
        a = self._populated(counter=1)
        b = self._populated(counter=2)
        a.merge(b)
        assert a.counter_value("c") == 3

    def test_merge_creates_missing_instruments(self):
        a = MetricsRegistry()
        b = self._populated(counter=4, gauge=2.0, obs=(0.5,))
        a.merge_snapshot(b.snapshot())
        assert a.counter_value("c") == 4
        assert a.gauge("g").value == 2.0
        assert a.histogram("h", edges=(1.0, 2.0)).count == 1

    def test_merge_is_associative_on_counters(self):
        # Worker-chunk merge order must not matter.
        parts = [self._populated(counter=k) for k in (1, 2, 3)]
        left = MetricsRegistry()
        for p in parts:
            left.merge_snapshot(p.snapshot())
        right = MetricsRegistry()
        for p in reversed(parts):
            right.merge_snapshot(p.snapshot())
        assert left.counter_value("c") == right.counter_value("c") == 6
