"""Freeze/thaw interleaved with dynamic labeling updates (ISSUE 2 satellite).

The flat numpy backend (``freeze``) and the insertion repair
(``labeling/dynamic.py``) meet in production: a serving index is frozen
for batch throughput, an edge arrives, the repair must thaw, mutate,
and the re-frozen labeling must answer exactly like a from-scratch
build.  These tests pin that lifecycle down, including the batch-cache
invalidation that :meth:`thaw` performs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LabelingError
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.labeling.dynamic import insert_edge
from repro.labeling.pll import build_pll
from repro.labeling.query import INF, batch_dist_query, dist_query


def all_pairs_ok(graph, labeling) -> None:
    """Assert the labeling is an exact distance cover of the graph."""
    n = graph.num_vertices
    for s in range(n):
        truth = bfs_distances(graph, s)
        for t in range(n):
            want = truth[t] if truth[t] != UNREACHED else INF
            assert dist_query(labeling, s, t) == want, (s, t)


def missing_edges(graph, rng_seed=0):
    import random

    rng = random.Random(rng_seed)
    out = []
    n = graph.num_vertices
    while len(out) < 4:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v) and (u, v) not in out:
            out.append((u, v))
    return out


class TestFrozenMutationRejected:
    def test_direct_mutation_of_frozen_rows_raises(self):
        g = generators.cycle_graph(6)
        labeling = build_pll(g).freeze()
        with pytest.raises(LabelingError, match="frozen"):
            labeling.hub_ranks[0] = [0]

    def test_insert_edge_thaws_automatically(self):
        """The dynamic repair calls thaw() itself; a frozen labeling must
        accept an insertion without the caller doing anything."""
        g = generators.path_graph(8)
        labeling = build_pll(g).freeze()
        assert labeling.frozen
        insert_edge(g, labeling, 0, 7)
        assert not labeling.frozen  # repair left it thawed
        all_pairs_ok(g, labeling)


class TestFreezeThawInterleaving:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_insert_freeze_insert_refreeze_equivalence(self, seed):
        """Alternate mutations and freezes; every state must stay exact."""
        g = generators.erdos_renyi_gnm(16, 24, seed=seed)
        labeling = build_pll(g)
        for i, (u, v) in enumerate(missing_edges(g, rng_seed=seed)):
            if i % 2 == 0:
                labeling.freeze()  # mutate from the frozen state
            insert_edge(g, labeling, u, v)
            all_pairs_ok(g, labeling)  # thawed answers
            labeling.freeze()
            all_pairs_ok(g, labeling)  # frozen answers
            labeling.thaw()

    def test_refrozen_batch_matches_rebuilt(self):
        """After thaw → insert → freeze, the batch path must agree with a
        from-scratch PLL build on the grown graph."""
        g = generators.erdos_renyi_gnm(14, 20, seed=5)
        labeling = build_pll(g)
        labeling.freeze()
        u, v = missing_edges(g, rng_seed=5)[0]
        insert_edge(g, labeling, u, v)
        labeling.freeze()

        fresh = build_pll(g.copy())
        n = g.num_vertices
        pairs = [(s, t) for s in range(n) for t in range(n)]
        got = batch_dist_query(labeling, pairs)
        want = batch_dist_query(fresh, pairs)
        assert np.array_equal(got, want)

    def test_thaw_invalidates_batch_cache(self):
        """A stale dense-prefix cache would answer with pre-insertion
        distances; thaw must drop it.  The dense cache belongs to the
        numpy batch path, so this test pins that tier (a compiled
        hub-join never builds the cache in the first place)."""
        from repro.kernels import use_tier

        with use_tier("numpy"):
            g = generators.path_graph(10)
            labeling = build_pll(g)
            pairs = [(0, 9), (9, 0), (4, 8), (1, 1)]
            before = batch_dist_query(labeling, pairs)  # builds the cache
            assert before[0] == 9.0
            insert_edge(g, labeling, 0, 9)  # thaws internally
            after = batch_dist_query(labeling, pairs)  # re-freezes, rebuilds
            assert after[0] == 1.0
            assert labeling._batch_cache is not None  # fresh, not stale
