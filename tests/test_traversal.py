"""Unit tests for BFS/Dijkstra traversal primitives."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.traversal import (
    UNREACHED,
    bfs_distance_between,
    bfs_distances,
    bfs_distances_avoiding_edge,
    bfs_tree,
    bidirectional_bfs,
    dijkstra_distances,
    eccentricity,
    shortest_path,
)
from repro.graph.weighted import WeightedGraph


class TestBFSDistances:
    def test_path_graph(self, path5):
        assert bfs_distances(path5, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert bfs_distances(g, 0) == [0, 1, UNREACHED, UNREACHED]

    def test_out_buffer_reused(self, path5):
        buf = [99] * 5
        result = bfs_distances(path5, 4, out=buf)
        assert result is buf
        assert buf == [4, 3, 2, 1, 0]

    def test_accepts_raw_adjacency(self):
        adj = [[1], [0, 2], [1]]
        assert bfs_distances(adj, 0) == [0, 1, 2]


class TestAvoidingEdge:
    def test_cycle_detour(self, cycle6):
        # Failing (0,1) forces the long way around for vertex 1.
        dist = bfs_distances_avoiding_edge(cycle6, 0, (0, 1))
        assert dist[1] == 5

    def test_bridge_disconnects(self, path5):
        dist = bfs_distances_avoiding_edge(path5, 0, (2, 3))
        assert dist[3] == UNREACHED and dist[4] == UNREACHED
        assert dist[2] == 2

    def test_matches_materialized_removal(self):
        g = generators.erdos_renyi_gnm(30, 60, seed=3)
        for u, v in list(g.edges())[:10]:
            removed = g.without_edge(u, v)
            for s in (0, u, v):
                assert bfs_distances_avoiding_edge(g, s, (u, v)) == (
                    bfs_distances(removed, s)
                )


class TestPointToPoint:
    def test_same_vertex(self, path5):
        assert bfs_distance_between(path5, 2, 2) == 0

    def test_early_exit_distance(self, path5):
        assert bfs_distance_between(path5, 0, 3) == 3

    def test_avoid_edge(self, cycle6):
        assert bfs_distance_between(cycle6, 0, 1, avoid=(0, 1)) == 5

    def test_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert bfs_distance_between(g, 0, 2) == UNREACHED


class TestBidirectionalBFS:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_onesided(self, seed):
        g = generators.erdos_renyi_gnm(28, 45, seed=seed)
        edges = list(g.edges())
        for s in range(0, 28, 5):
            for t in range(0, 28, 7):
                expected = bfs_distance_between(g, s, t)
                assert bidirectional_bfs(g, s, t) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_onesided_avoiding(self, seed):
        g = generators.erdos_renyi_gnm(22, 40, seed=seed)
        edge = next(iter(g.edges()))
        for s in range(0, 22, 3):
            for t in range(0, 22, 4):
                expected = bfs_distance_between(g, s, t, avoid=edge)
                assert bidirectional_bfs(g, s, t, avoid=edge) == expected

    def test_disconnected_returns_unreached(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert bidirectional_bfs(g, 0, 3) == UNREACHED


class TestShortestPathAndTree:
    def test_path_endpoints_and_length(self, cycle6):
        path = shortest_path(cycle6, 0, 3)
        assert path is not None
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4  # distance 3

    def test_path_respects_avoid(self, cycle6):
        path = shortest_path(cycle6, 0, 1, avoid=(0, 1))
        assert path == [0, 5, 4, 3, 2, 1]

    def test_path_none_when_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert shortest_path(g, 0, 2) is None

    def test_bfs_tree_parents(self, path5):
        parent = bfs_tree(path5, 0)
        assert parent == [UNREACHED, 0, 1, 2, 3]

    def test_path_edges_exist(self):
        g = generators.erdos_renyi_gnm(20, 40, seed=5)
        path = shortest_path(g, 0, 10)
        if path is not None:
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)


class TestDijkstra:
    def test_unit_weights_match_bfs(self):
        g = generators.erdos_renyi_gnm(25, 50, seed=9)
        wg = WeightedGraph.from_unweighted(g)
        bfs = bfs_distances(g, 0)
        dij = dijkstra_distances(wg, 0)
        for v in range(25):
            expected = float(bfs[v]) if bfs[v] != UNREACHED else float("inf")
            assert dij[v] == expected

    def test_weighted_shortcut(self):
        wg = WeightedGraph(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        assert dijkstra_distances(wg, 0)[1] == 2.0

    def test_avoid_edge(self):
        wg = WeightedGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (2, 1, 1.0)])
        assert dijkstra_distances(wg, 0, avoid=(0, 1))[1] == 2.0


def test_eccentricity(path5):
    assert eccentricity(path5, 0) == 4
    assert eccentricity(path5, 2) == 2
