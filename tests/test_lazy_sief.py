"""Unit tests for the lazy, mutation-aware SIEF index."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFound, IndexError_
from repro.graph import generators
from repro.graph.traversal import UNREACHED, bfs_distance_between
from repro.labeling.query import INF
from repro.core.lazy import LazySIEFIndex


def truth(graph, s, t, edge):
    d = bfs_distance_between(graph, s, t, avoid=edge)
    return d if d != UNREACHED else INF


@pytest.fixture
def lazy():
    g = generators.erdos_renyi_gnm(18, 32, seed=20)
    return LazySIEFIndex(g)


class TestLaziness:
    def test_no_cases_up_front(self, lazy):
        assert lazy.cases_built == 0

    def test_case_built_on_first_query(self, lazy):
        edge = next(iter(lazy.graph.edges()))
        lazy.distance(0, 5, edge)
        assert lazy.cases_built == 1
        lazy.distance(1, 6, edge)
        assert lazy.cases_built == 1
        assert lazy.cache_hits == 1

    def test_answers_match_bfs(self, lazy):
        g = lazy.graph
        for edge in list(g.edges())[:6]:
            for s in range(0, 18, 3):
                for t in range(0, 18, 5):
                    assert lazy.distance(s, t, edge) == truth(g, s, t, edge)

    def test_unknown_edge_rejected(self, lazy):
        non_edge = next(
            (u, v)
            for u in range(18)
            for v in range(u + 1, 18)
            if not lazy.graph.has_edge(u, v)
        )
        with pytest.raises(EdgeNotFound):
            lazy.distance(0, 1, non_edge)

    def test_unknown_algorithm_rejected(self, path5):
        with pytest.raises(IndexError_):
            LazySIEFIndex(path5, algorithm="dfs")


class TestMutation:
    def test_insert_edge_invalidates_and_stays_exact(self, lazy):
        g = lazy.graph
        edge = next(iter(g.edges()))
        lazy.distance(0, 9, edge)
        assert lazy.cases_built == 1
        new = next(
            (u, v)
            for u in range(18)
            for v in range(u + 1, 18)
            if not g.has_edge(u, v)
        )
        lazy.insert_edge(*new)
        assert lazy.cases_built == 0  # cache invalidated
        # Every answer reflects the grown graph.
        for e in list(g.edges())[:5]:
            for s, t in [(0, 9), (3, 14), (2, 17)]:
                assert lazy.distance(s, t, e) == truth(g, s, t, e)

    def test_query_new_edge_as_failure(self, lazy):
        g = lazy.graph
        new = next(
            (u, v)
            for u in range(18)
            for v in range(u + 1, 18)
            if not g.has_edge(u, v)
        )
        lazy.insert_edge(*new)
        # Failing the just-inserted edge must give pre-insertion answers.
        for s, t in [(0, 9), (5, 12)]:
            assert lazy.distance(s, t, new) == truth(g, s, t, new)

    def test_commit_failure_rebases(self, lazy):
        g = lazy.graph
        edge = next(iter(g.edges()))
        before = lazy.distance(0, 9, edge)
        lazy.commit_failure(*edge)
        assert not g.has_edge(*edge)
        # The failure is now the baseline: static queries match.
        from repro.labeling.query import dist_query

        assert dist_query(lazy.labeling, 0, 9) == before
        # And the removed edge can no longer be named as a failure.
        with pytest.raises(EdgeNotFound):
            lazy.distance(0, 9, edge)

    def test_interleaved_mutations(self):
        g = generators.cycle_graph(8)
        lazy = LazySIEFIndex(g)
        lazy.insert_edge(0, 4)          # chord
        assert lazy.distance(0, 4, (0, 1)) == 1
        lazy.commit_failure(0, 4)       # chord gone again
        assert lazy.distance(0, 4, (0, 1)) == truth(g, 0, 4, (0, 1))


def test_repr(lazy):
    assert "LazySIEFIndex" in repr(lazy)
