"""Unit tests for graph I/O (edge lists, JSON)."""

from __future__ import annotations

import pytest

from repro.exceptions import SerializationError
from repro.graph.graph import Graph
from repro.graph import generators
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    load_graph_json,
    read_edge_list,
    read_weighted_edge_list,
    save_graph_json,
    write_edge_list,
    write_weighted_edge_list,
)
from repro.graph.weighted import WeightedGraph


def test_read_snap_style_file(tmp_path):
    text = (
        "# Directed graph (each unordered pair of nodes is saved once)\n"
        "# Nodes: 4 Edges: 3\n"
        "10\t20\n"
        "20\t30\n"
        "%% alternative comment style\n"
        "30 10\n"
        "\n"
    )
    path = tmp_path / "snap.txt"
    path.write_text(text)
    graph, names = read_edge_list(path)
    assert graph.num_vertices == 3
    assert graph.num_edges == 3
    assert names == ["10", "20", "30"]


def test_read_edge_list_collapses_duplicates_and_loops(tmp_path):
    path = tmp_path / "dirty.txt"
    path.write_text("1 2\n2 1\n3 3\n1 2\n")
    graph, _names = read_edge_list(path)
    assert graph.num_edges == 1


def test_read_edge_list_bad_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(SerializationError, match="bad.txt:1"):
        read_edge_list(path)


def test_edge_list_round_trip(tmp_path):
    g = generators.erdos_renyi_gnm(25, 50, seed=11)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path, header="round trip test")
    loaded, names = read_edge_list(path)
    # Names are written as dense ids, so the round trip is id-stable once
    # re-densified in first-seen order; compare structurally.
    assert loaded.num_vertices == g.num_vertices - sum(
        1 for v in g.vertices() if g.degree(v) == 0
    )
    assert loaded.num_edges == g.num_edges


def test_weighted_round_trip(tmp_path):
    g = WeightedGraph(4, [(0, 1, 1.5), (1, 2, 2.0), (2, 3, 0.25)])
    path = tmp_path / "weighted.txt"
    write_weighted_edge_list(g, path)
    loaded, _names = read_weighted_edge_list(path)
    assert loaded.num_edges == 3
    assert loaded.weight(0, 1) == 1.5
    assert loaded.weight(2, 3) == 0.25


def test_weighted_bad_weight(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("0 1 heavy\n")
    with pytest.raises(SerializationError, match="bad weight"):
        read_weighted_edge_list(path)


def test_weighted_missing_column(tmp_path):
    path = tmp_path / "w.txt"
    path.write_text("0 1\n")
    with pytest.raises(SerializationError):
        read_weighted_edge_list(path)


def test_json_round_trip():
    g = Graph(5, [(0, 1), (1, 2), (3, 4)])
    assert graph_from_json(graph_to_json(g)) == g


def test_json_preserves_isolated_vertices():
    g = Graph(4, [(0, 1)])
    assert graph_from_json(graph_to_json(g)).num_vertices == 4


def test_json_file_round_trip(tmp_path):
    g = generators.cycle_graph(7)
    path = tmp_path / "graph.json"
    save_graph_json(g, path)
    assert load_graph_json(path) == g


def test_json_malformed():
    with pytest.raises(SerializationError):
        graph_from_json("{not json")
    with pytest.raises(SerializationError):
        graph_from_json('{"edges": [[0, 1]]}')  # missing "n"
