"""Unit tests for trace spans and the ring-buffer recorder."""

from __future__ import annotations

import pytest

from repro.obs import SpanRecord, TraceRecorder


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


def test_single_span_records_name_and_depth():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("pll.build"):
        pass
    (span,) = rec.records()
    assert span.name == "pll.build"
    assert span.depth == 0
    assert rec.balanced


def test_injected_clock_gives_deterministic_durations():
    clock = FakeClock(step=1.0)
    rec = TraceRecorder(clock=clock)
    with rec.span("outer"):
        pass
    (span,) = rec.records()
    # push reads t=0, pop reads t=1: exactly one step elapsed.
    assert span.seconds == 1.0


def test_nested_spans_record_depth_and_finish_inner_first():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("outer"):
        with rec.span("inner"):
            assert rec.depth == 2
            assert rec.open_spans() == ["outer", "inner"]
    names = [(r.name, r.depth) for r in rec.records()]
    assert names == [("inner", 1), ("outer", 0)]
    assert rec.balanced


def test_span_pops_on_exception():
    rec = TraceRecorder(clock=FakeClock())
    with pytest.raises(RuntimeError, match="boom"):
        with rec.span("outer"):
            with rec.span("inner"):
                raise RuntimeError("boom")
    assert rec.depth == 0
    assert rec.balanced
    assert [r.name for r in rec.records()] == ["inner", "outer"]


def test_out_of_order_close_is_an_error():
    rec = TraceRecorder(clock=FakeClock())
    outer = rec.span("outer")
    inner = rec.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError, match="exit order"):
        outer.__exit__(None, None, None)


def test_close_with_nothing_open_is_an_error():
    rec = TraceRecorder(clock=FakeClock())
    s = rec.span("x")
    with pytest.raises(RuntimeError, match="no span open"):
        s.__exit__(None, None, None)


def test_ring_buffer_keeps_only_newest_capacity_records():
    rec = TraceRecorder(capacity=3, clock=FakeClock())
    for i in range(5):
        with rec.span(f"s{i}"):
            pass
    assert rec.total_finished == 5
    assert [r.name for r in rec.records()] == ["s2", "s3", "s4"]
    assert rec.balanced


def test_records_before_wraparound_are_oldest_first():
    rec = TraceRecorder(capacity=8, clock=FakeClock())
    for i in range(3):
        with rec.span(f"s{i}"):
            pass
    assert [r.name for r in rec.records()] == ["s0", "s1", "s2"]


def test_clear_drops_records_but_keeps_lifetime_counts():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("a"):
        pass
    rec.clear()
    assert rec.records() == []
    assert rec.total_started == rec.total_finished == 1
    assert rec.balanced


def test_unbalanced_while_span_open():
    rec = TraceRecorder(clock=FakeClock())
    span = rec.span("open")
    span.__enter__()
    assert not rec.balanced
    assert rec.open_spans() == ["open"]
    span.__exit__(None, None, None)
    assert rec.balanced


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_span_record_is_frozen():
    r = SpanRecord(name="x", depth=0, seconds=1.0)
    with pytest.raises(AttributeError):
        r.name = "y"


def test_span_record_carries_clock_start():
    clock = FakeClock(step=1.0)
    rec = TraceRecorder(clock=clock)
    with rec.span("a"):
        pass
    with rec.span("b"):
        pass
    a, b = rec.records()
    assert a.start == 0.0  # first clock read
    assert b.start == 2.0  # push(0) pop(1) push(2) pop(3)
    assert b.start > a.start


def test_dropped_spans_counts_ring_overwrites():
    rec = TraceRecorder(capacity=2, clock=FakeClock())
    assert rec.dropped_spans == 0
    for i in range(5):
        with rec.span(f"s{i}"):
            pass
    # 5 finished into a 2-slot ring: the first two filled empty slots,
    # the next three each overwrote a live record.
    assert rec.dropped_spans == 3
    assert rec.total_finished == 5


def test_sync_registry_increments_by_delta_only():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    rec = TraceRecorder(capacity=1, clock=FakeClock())
    with rec.span("a"):
        pass
    rec.sync_registry(reg)
    assert reg.counter_value("trace.dropped_spans") == 0
    with rec.span("b"):
        pass
    with rec.span("c"):
        pass
    rec.sync_registry(reg)
    assert reg.counter_value("trace.dropped_spans") == 2
    rec.sync_registry(reg)  # no new drops: counter must not move
    assert reg.counter_value("trace.dropped_spans") == 2


def test_add_track_keeps_worker_records_separate():
    rec = TraceRecorder(clock=FakeClock())
    with rec.span("parent"):
        pass
    foreign = [SpanRecord(name="sief.build.case", depth=0, seconds=0.5)]
    rec.add_track("worker-1", foreign)
    rec.add_track("worker-1", foreign)  # same worker, second chunk
    rec.add_track("worker-2", foreign)
    assert [r.name for r in rec.records()] == ["parent"]
    tracks = rec.tracks()
    assert sorted(tracks) == ["worker-1", "worker-2"]
    assert len(tracks["worker-1"]) == 2
    assert len(tracks["worker-2"]) == 1


def test_clear_drops_tracks_too():
    rec = TraceRecorder(clock=FakeClock())
    rec.add_track("worker-1", [SpanRecord(name="x", depth=0, seconds=0.1)])
    rec.clear()
    assert rec.tracks() == {}
