"""Tests for directed SIEF — the paper's directed-graphs extension claim.

Directed single-arc failure indexing is not evaluated in the paper; this
implementation (design notes in ``repro/failures/directed.py``) is
validated here the only way that counts: exhaustively against directed
BFS on random digraphs, plus structural checks of the directed affected
sets (including the overlap case that does not exist undirected).
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro.exceptions import EdgeNotFound, FailureCaseNotIndexed
from repro.graph.digraph import DiGraph
from repro.labeling.query import INF
from repro.failures.directed import (
    DirectedSIEFIndex,
    build_directed_sief,
    build_directed_supplemental,
    identify_affected_directed,
)
from repro.labeling.pll_directed import build_directed_pll


def random_digraph(seed: int, n: int, arcs: int) -> DiGraph:
    rng = random.Random(seed)
    g = DiGraph(n)
    while g.num_arcs < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_arc(u, v):
            g.add_arc(u, v)
    return g


def bfs_avoiding_arc(g: DiGraph, s: int, arc):
    a, b = arc
    dist = [INF] * g.num_vertices
    dist[s] = 0
    queue = deque((s,))
    while queue:
        x = queue.popleft()
        for y in g.successors(x):
            if x == a and y == b:
                continue
            if dist[y] == INF:
                dist[y] = dist[x] + 1
                queue.append(y)
    return dist


class TestIdentify:
    @pytest.mark.parametrize("seed", range(8))
    def test_sides_match_definition(self, seed):
        g = random_digraph(seed, 12, 28)
        for arc in g.arcs():
            av = identify_affected_directed(g, *arc)
            u, v = arc
            # Oracle for S: distance to v changed.
            want_s = []
            want_t = []
            for x in range(12):
                to_v_old = bfs_avoiding_arc(g, x, (-1, -1))[v]
                to_v_new = bfs_avoiding_arc(g, x, arc)[v]
                if to_v_old != to_v_new:
                    want_s.append(x)
            from_u_old = bfs_avoiding_arc(g, u, (-1, -1))
            from_u_new = bfs_avoiding_arc(g, u, arc)
            for x in range(12):
                if from_u_old[x] != from_u_new[x]:
                    want_t.append(x)
            assert list(av.side_s) == want_s, arc
            assert list(av.side_t) == want_t, arc

    def test_endpoints_always_affected(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        av = identify_affected_directed(g, 0, 1)
        assert av.in_s(0)
        assert av.in_t(1)

    def test_sides_can_overlap_on_cycles(self):
        # 0 -> 1 -> 0: failing 0->1 affects both directions through 1.
        g = DiGraph(3, [(0, 1), (1, 0), (1, 2), (2, 0)])
        av = identify_affected_directed(g, 0, 1)
        overlap = set(av.side_s) & set(av.side_t)
        assert overlap, "expected overlapping sides on a directed cycle"

    def test_missing_arc_rejected(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(EdgeNotFound):
            identify_affected_directed(g, 1, 0)


class TestQueries:
    @pytest.mark.parametrize("seed", range(10))
    def test_exhaustive_vs_bfs(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 14)
        g = random_digraph(seed, n, rng.randint(n, 3 * n))
        index = build_directed_sief(g)
        for arc in g.arcs():
            for s in range(n):
                truth = bfs_avoiding_arc(g, s, arc)
                for t in range(n):
                    assert index.distance(s, t, arc) == truth[t], (
                        arc, s, t,
                    )

    def test_cross_pair_can_survive_arc_disconnection(self):
        """The directed twist: d'(u->v) = inf does not disconnect every
        cross pair (unlike undirected bridges)."""
        g = DiGraph(4, [(0, 1), (1, 3), (2, 0), (2, 3)])
        # Failing 0->1: S contains 2 (its path to 1 died), T contains 3.
        index = build_directed_sief(g)
        av = identify_affected_directed(g, 0, 1)
        assert av.disconnected  # u can no longer reach v
        if av.in_s(2) and av.in_t(3):
            assert index.distance(2, 3, (0, 1)) == 1  # direct arc 2->3

    def test_unknown_arc_rejected(self):
        g = DiGraph(3, [(0, 1)])
        index = build_directed_sief(g)
        with pytest.raises(FailureCaseNotIndexed):
            index.distance(0, 1, (1, 0))

    def test_prebuilt_labeling_reused(self):
        g = random_digraph(3, 10, 24)
        labeling = build_directed_pll(g)
        index = build_directed_sief(g, labeling)
        assert index.labeling is labeling

    def test_supplement_entry_counts_nonnegative(self):
        g = random_digraph(5, 12, 30)
        labeling = build_directed_pll(g)
        for arc in list(g.arcs())[:10]:
            av = identify_affected_directed(g, *arc)
            si = build_directed_supplemental(g, labeling, av)
            assert si.total_entries() >= 0


class TestRecursionDepth:
    def test_long_cycle_queries_terminate(self):
        # A long directed cycle maximizes rank-chained recursion.
        n = 60
        g = DiGraph(n, [(i, (i + 1) % n) for i in range(n)])
        index = build_directed_sief(g)
        arc = (0, 1)
        for s in range(0, n, 7):
            for t in range(0, n, 11):
                got = index.distance(s, t, arc)
                truth = bfs_avoiding_arc(g, s, arc)[t]
                assert got == truth
