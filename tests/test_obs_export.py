"""Exporter tests: JSON-lines sidecars and Prometheus text exposition."""

from __future__ import annotations

import json

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    escape_label_value,
    parse_prometheus_text,
    quantile_from_buckets,
    read_json_lines,
    registry_from_json_lines,
    sanitize_name,
    to_json_lines,
    to_prometheus_text,
    unescape_label_value,
    write_json_lines,
    write_prometheus_text,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("sief.build.cases").inc(3)
    reg.gauge("pll.last_build.vertices").set(100)
    h = reg.histogram("sief.query.batch_size", edges=(1, 10, 100))
    h.observe(5)
    h.observe(10)
    h.observe(5000)
    return reg


class TestSanitizeName:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_name("sief.build.cases") == "sief_build_cases"
        assert sanitize_name("a-b c") == "a_b_c"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_name("2hop.entries") == "_2hop_entries"

    def test_colons_and_underscores_survive(self):
        assert sanitize_name("ns:sub_total") == "ns:sub_total"

    def test_empty_name_becomes_underscore(self):
        assert sanitize_name("") == "_"

    def test_distinct_names_colliding_get_hash_suffix(self):
        taken = {}
        first = sanitize_name("sief.build.cases", taken)
        second = sanitize_name("sief.build-cases", taken)
        assert first == "sief_build_cases"
        assert second.startswith("sief_build_cases_")
        assert second != first

    def test_same_name_twice_is_stable(self):
        taken = {}
        assert sanitize_name("a.b", taken) == sanitize_name("a.b", taken)

    def test_collision_dedup_in_full_exposition(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(1)
        reg.gauge("a-b").set(2)
        text = to_prometheus_text(reg)
        # Both series survive as distinct names.
        names = [
            line.split()[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(names) == len(set(names)) == 2


class TestJsonLines:
    def test_one_object_per_line_all_types(self):
        reg = _populated_registry()
        lines = [json.loads(x) for x in to_json_lines(reg).splitlines()]
        by_type = {}
        for obj in lines:
            by_type.setdefault(obj["type"], []).append(obj)
        assert by_type["counter"] == [
            {"type": "counter", "name": "sief.build.cases", "value": 3}
        ]
        assert by_type["gauge"][0]["value"] == 100
        (hist,) = by_type["histogram"]
        assert hist["edges"] == [1, 10, 100]
        assert hist["counts"] == [0, 2, 0, 1]
        assert hist["count"] == 3

    def test_tracer_spans_and_summary_appended(self):
        reg = _populated_registry()
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        lines = [json.loads(x) for x in to_json_lines(reg, rec).splitlines()]
        spans = [o for o in lines if o["type"] == "span"]
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("inner", 1),
            ("outer", 0),
        ]
        (summary,) = [o for o in lines if o["type"] == "trace_summary"]
        assert summary == {
            "type": "trace_summary",
            "started": 2,
            "finished": 2,
            "balanced": True,
            "dropped": 0,
        }

    def test_empty_registry_renders_empty_string(self):
        assert to_json_lines(MetricsRegistry()) == ""

    def test_write_then_read_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = write_json_lines(reg, tmp_path / "sub" / "m.jsonl")
        assert path.exists()
        objs = read_json_lines(path)
        assert {o["type"] for o in objs} == {"counter", "gauge", "histogram"}

    def test_sidecars_concatenate_cleanly(self, tmp_path):
        # The line-oriented format's contract: cat a.jsonl b.jsonl parses.
        a = write_json_lines(_populated_registry(), tmp_path / "a.jsonl")
        b = write_json_lines(_populated_registry(), tmp_path / "b.jsonl")
        both = tmp_path / "both.jsonl"
        both.write_text(a.read_text() + b.read_text())
        assert len(read_json_lines(both)) == 2 * len(read_json_lines(a))


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus_text(_populated_registry())
        assert "# TYPE sief_build_cases counter\nsief_build_cases 3" in text
        assert (
            "# TYPE pll_last_build_vertices gauge\n"
            "pll_last_build_vertices 100" in text
        )

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus_text(_populated_registry())
        assert 'sief_query_batch_size_bucket{le="1"} 0' in text
        assert 'sief_query_batch_size_bucket{le="10"} 2' in text
        assert 'sief_query_batch_size_bucket{le="100"} 2' in text
        assert 'sief_query_batch_size_bucket{le="+Inf"} 3' in text
        assert "sief_query_batch_size_count 3" in text
        assert "sief_query_batch_size_sum 5015" in text

    def test_inf_bucket_equals_count_invariant(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(0.5,))
        for v in (0.1, 0.9, 2.0):
            h.observe(v)
        text = to_prometheus_text(reg)
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_write_prometheus_text(self, tmp_path):
        path = write_prometheus_text(
            _populated_registry(), tmp_path / "metrics.prom"
        )
        assert "# TYPE" in path.read_text()

    def test_empty_registry_renders_empty_string(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_tracer_dropped_spans_appended_as_counter(self):
        rec = TraceRecorder(capacity=1)
        for name in ("a", "b", "c"):
            with rec.span(name):
                pass
        text = to_prometheus_text(MetricsRegistry(), rec)
        assert "# TYPE trace_dropped_spans counter" in text
        assert "trace_dropped_spans 2" in text

    def test_tracer_counter_not_duplicated_when_registry_has_it(self):
        reg = MetricsRegistry()
        rec = TraceRecorder(capacity=1)
        for name in ("a", "b"):
            with rec.span(name):
                pass
        rec.sync_registry(reg)
        text = to_prometheus_text(reg, rec)
        assert text.count("# TYPE trace_dropped_spans counter") == 1


class TestPrometheusSpecials:
    """IEEE specials must use the exposition spellings, not Python's."""

    def test_nan_and_infinities_in_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("g.nan").set(float("nan"))
        reg.gauge("g.posinf").set(float("inf"))
        reg.gauge("g.neginf").set(float("-inf"))
        text = to_prometheus_text(reg)
        values = {
            line.split()[0]: line.split()[1]
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert values["g_nan"] == "NaN"
        assert values["g_posinf"] == "+Inf"
        assert values["g_neginf"] == "-Inf"

    def test_specials_survive_a_parse(self):
        reg = MetricsRegistry()
        reg.gauge("g.nan").set(float("nan"))
        reg.gauge("g.posinf").set(float("inf"))
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        assert math.isnan(parsed["gauges"]["g_nan"])
        assert parsed["gauges"]["g_posinf"] == math.inf


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ("plain", "plain"),
            ('say "hi"', 'say \\"hi\\"'),
            ("back\\slash", "back\\\\slash"),
            ("two\nlines", "two\\nlines"),
            ('all\\of "it"\n', 'all\\\\of \\"it\\"\\n'),
        ],
    )
    def test_escape_and_inverse(self, raw, escaped):
        assert escape_label_value(raw) == escaped
        assert unescape_label_value(escaped) == raw

    def test_escaped_value_fits_on_one_exposition_line(self):
        assert "\n" not in escape_label_value("a\nb\nc")

    def test_unescape_tolerates_lone_trailing_backslash(self):
        assert unescape_label_value("oops\\") == "oops\\"


def _registry_from_parsed(parsed: dict) -> MetricsRegistry:
    """Rebuild a registry from a parse_prometheus_text result."""
    reg = MetricsRegistry()
    for name, value in parsed["counters"].items():
        reg.counter(name).inc(value)
    for name, value in parsed["gauges"].items():
        reg.gauge(name).set(value)
    for name, data in parsed["histograms"].items():
        h = reg.histogram(name, tuple(data["edges"]))
        for i, c in enumerate(data["counts"]):
            h.counts[i] += c
        h.sum += data["sum"]
        h.count += data["count"]
    return reg


class TestParsePrometheusText:
    def test_parse_inverts_render(self):
        parsed = parse_prometheus_text(
            to_prometheus_text(_populated_registry())
        )
        assert parsed["counters"] == {"sief_build_cases": 3}
        assert parsed["gauges"] == {"pll_last_build_vertices": 100}
        hist = parsed["histograms"]["sief_query_batch_size"]
        assert hist["edges"] == [1.0, 10.0, 100.0]
        assert hist["counts"] == [0, 2, 0, 1]  # de-cumulated
        assert hist["count"] == 3
        assert hist["sum"] == 5015

    def test_render_parse_render_is_identity(self):
        # The fixed point the `sief top` dashboard relies on: whatever
        # we expose parses back into the same exposition.
        first = to_prometheus_text(_populated_registry())
        second = to_prometheus_text(
            _registry_from_parsed(parse_prometheus_text(first))
        )
        assert second == first

    def test_empty_text_parses_to_empty_snapshot(self):
        assert parse_prometheus_text("") == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_garbage_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("{not a metric}")

    def test_untyped_sample_defaults_to_counter(self):
        parsed = parse_prometheus_text("orphan_total 7\n")
        assert parsed["counters"] == {"orphan_total": 7}


class TestQuantileFromBuckets:
    HIST = {"edges": [0.1, 0.5, 1.0], "counts": [10, 0, 10, 0], "count": 20}

    def test_interpolates_within_bucket(self):
        # rank 10 sits exactly at the first bucket's top edge
        assert quantile_from_buckets(self.HIST, 0.5) == pytest.approx(0.1)
        # rank 15 is halfway through the (0.5, 1.0] bucket
        assert quantile_from_buckets(self.HIST, 0.75) == pytest.approx(0.75)
        assert quantile_from_buckets(self.HIST, 1.0) == pytest.approx(1.0)

    def test_overflow_bucket_returns_top_edge(self):
        hist = {"edges": [0.1, 1.0], "counts": [0, 0, 5]}
        assert quantile_from_buckets(hist, 0.99) == 1.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(
            quantile_from_buckets({"edges": [1.0], "counts": [0, 0]}, 0.5)
        )
        assert math.isnan(quantile_from_buckets({"edges": [], "counts": []}, 0.5))

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            quantile_from_buckets(self.HIST, 1.5)

    def test_quantile_of_parsed_serving_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.005, 0.05):
            h.observe(v)
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        p50 = quantile_from_buckets(parsed["histograms"]["lat"], 0.5)
        assert 0.001 <= p50 <= 0.01


class TestRoundTrip:
    """write -> read -> rebuild must reproduce the snapshot exactly."""

    def test_registry_round_trip_all_instrument_kinds(self, tmp_path):
        reg = _populated_registry()
        path = write_json_lines(reg, tmp_path / "m.jsonl")
        rebuilt = registry_from_json_lines(read_json_lines(path))
        assert rebuilt.snapshot() == reg.snapshot()

    def test_round_trip_ignores_span_and_summary_lines(self, tmp_path):
        reg = _populated_registry()
        rec = TraceRecorder()
        with rec.span("outer"):
            pass
        path = write_json_lines(reg, tmp_path / "m.jsonl", rec)
        rebuilt = registry_from_json_lines(read_json_lines(path))
        snap = rebuilt.snapshot()
        expected = reg.snapshot()
        # The exporter adds the tracer's dropped counter; everything the
        # registry itself held must survive unchanged.
        assert snap["counters"].pop("trace.dropped_spans") == 0
        assert snap == expected

    def test_round_trip_of_merged_multiworker_snapshots(self, tmp_path):
        # Simulate the parallel-build join: several worker registries
        # merged into one parent, exported, and rebuilt.
        parent = MetricsRegistry()
        for worker in range(3):
            w = MetricsRegistry()
            w.counter("sief.build.cases").inc(worker + 1)
            w.gauge("pll.last_build.vertices").set(100)
            h = w.histogram("sief.build.affected_size", edges=(1, 10))
            h.observe(worker)
            h.observe(50)
            parent.merge_snapshot(w.snapshot())
        path = write_json_lines(parent, tmp_path / "merged.jsonl")
        rebuilt = registry_from_json_lines(read_json_lines(path))
        assert rebuilt.snapshot() == parent.snapshot()
        assert rebuilt.counter("sief.build.cases").value == 6
