"""Exporter tests: JSON-lines sidecars and Prometheus text exposition."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    read_json_lines,
    registry_from_json_lines,
    sanitize_name,
    to_json_lines,
    to_prometheus_text,
    write_json_lines,
    write_prometheus_text,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("sief.build.cases").inc(3)
    reg.gauge("pll.last_build.vertices").set(100)
    h = reg.histogram("sief.query.batch_size", edges=(1, 10, 100))
    h.observe(5)
    h.observe(10)
    h.observe(5000)
    return reg


class TestSanitizeName:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_name("sief.build.cases") == "sief_build_cases"
        assert sanitize_name("a-b c") == "a_b_c"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_name("2hop.entries") == "_2hop_entries"

    def test_colons_and_underscores_survive(self):
        assert sanitize_name("ns:sub_total") == "ns:sub_total"

    def test_empty_name_becomes_underscore(self):
        assert sanitize_name("") == "_"

    def test_distinct_names_colliding_get_hash_suffix(self):
        taken = {}
        first = sanitize_name("sief.build.cases", taken)
        second = sanitize_name("sief.build-cases", taken)
        assert first == "sief_build_cases"
        assert second.startswith("sief_build_cases_")
        assert second != first

    def test_same_name_twice_is_stable(self):
        taken = {}
        assert sanitize_name("a.b", taken) == sanitize_name("a.b", taken)

    def test_collision_dedup_in_full_exposition(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(1)
        reg.gauge("a-b").set(2)
        text = to_prometheus_text(reg)
        # Both series survive as distinct names.
        names = [
            line.split()[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(names) == len(set(names)) == 2


class TestJsonLines:
    def test_one_object_per_line_all_types(self):
        reg = _populated_registry()
        lines = [json.loads(x) for x in to_json_lines(reg).splitlines()]
        by_type = {}
        for obj in lines:
            by_type.setdefault(obj["type"], []).append(obj)
        assert by_type["counter"] == [
            {"type": "counter", "name": "sief.build.cases", "value": 3}
        ]
        assert by_type["gauge"][0]["value"] == 100
        (hist,) = by_type["histogram"]
        assert hist["edges"] == [1, 10, 100]
        assert hist["counts"] == [0, 2, 0, 1]
        assert hist["count"] == 3

    def test_tracer_spans_and_summary_appended(self):
        reg = _populated_registry()
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        lines = [json.loads(x) for x in to_json_lines(reg, rec).splitlines()]
        spans = [o for o in lines if o["type"] == "span"]
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("inner", 1),
            ("outer", 0),
        ]
        (summary,) = [o for o in lines if o["type"] == "trace_summary"]
        assert summary == {
            "type": "trace_summary",
            "started": 2,
            "finished": 2,
            "balanced": True,
            "dropped": 0,
        }

    def test_empty_registry_renders_empty_string(self):
        assert to_json_lines(MetricsRegistry()) == ""

    def test_write_then_read_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = write_json_lines(reg, tmp_path / "sub" / "m.jsonl")
        assert path.exists()
        objs = read_json_lines(path)
        assert {o["type"] for o in objs} == {"counter", "gauge", "histogram"}

    def test_sidecars_concatenate_cleanly(self, tmp_path):
        # The line-oriented format's contract: cat a.jsonl b.jsonl parses.
        a = write_json_lines(_populated_registry(), tmp_path / "a.jsonl")
        b = write_json_lines(_populated_registry(), tmp_path / "b.jsonl")
        both = tmp_path / "both.jsonl"
        both.write_text(a.read_text() + b.read_text())
        assert len(read_json_lines(both)) == 2 * len(read_json_lines(a))


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus_text(_populated_registry())
        assert "# TYPE sief_build_cases counter\nsief_build_cases 3" in text
        assert (
            "# TYPE pll_last_build_vertices gauge\n"
            "pll_last_build_vertices 100" in text
        )

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus_text(_populated_registry())
        assert 'sief_query_batch_size_bucket{le="1"} 0' in text
        assert 'sief_query_batch_size_bucket{le="10"} 2' in text
        assert 'sief_query_batch_size_bucket{le="100"} 2' in text
        assert 'sief_query_batch_size_bucket{le="+Inf"} 3' in text
        assert "sief_query_batch_size_count 3" in text
        assert "sief_query_batch_size_sum 5015" in text

    def test_inf_bucket_equals_count_invariant(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(0.5,))
        for v in (0.1, 0.9, 2.0):
            h.observe(v)
        text = to_prometheus_text(reg)
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_write_prometheus_text(self, tmp_path):
        path = write_prometheus_text(
            _populated_registry(), tmp_path / "metrics.prom"
        )
        assert "# TYPE" in path.read_text()

    def test_empty_registry_renders_empty_string(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_tracer_dropped_spans_appended_as_counter(self):
        rec = TraceRecorder(capacity=1)
        for name in ("a", "b", "c"):
            with rec.span(name):
                pass
        text = to_prometheus_text(MetricsRegistry(), rec)
        assert "# TYPE trace_dropped_spans counter" in text
        assert "trace_dropped_spans 2" in text

    def test_tracer_counter_not_duplicated_when_registry_has_it(self):
        reg = MetricsRegistry()
        rec = TraceRecorder(capacity=1)
        for name in ("a", "b"):
            with rec.span(name):
                pass
        rec.sync_registry(reg)
        text = to_prometheus_text(reg, rec)
        assert text.count("# TYPE trace_dropped_spans counter") == 1


class TestRoundTrip:
    """write -> read -> rebuild must reproduce the snapshot exactly."""

    def test_registry_round_trip_all_instrument_kinds(self, tmp_path):
        reg = _populated_registry()
        path = write_json_lines(reg, tmp_path / "m.jsonl")
        rebuilt = registry_from_json_lines(read_json_lines(path))
        assert rebuilt.snapshot() == reg.snapshot()

    def test_round_trip_ignores_span_and_summary_lines(self, tmp_path):
        reg = _populated_registry()
        rec = TraceRecorder()
        with rec.span("outer"):
            pass
        path = write_json_lines(reg, tmp_path / "m.jsonl", rec)
        rebuilt = registry_from_json_lines(read_json_lines(path))
        snap = rebuilt.snapshot()
        expected = reg.snapshot()
        # The exporter adds the tracer's dropped counter; everything the
        # registry itself held must survive unchanged.
        assert snap["counters"].pop("trace.dropped_spans") == 0
        assert snap == expected

    def test_round_trip_of_merged_multiworker_snapshots(self, tmp_path):
        # Simulate the parallel-build join: several worker registries
        # merged into one parent, exported, and rebuilt.
        parent = MetricsRegistry()
        for worker in range(3):
            w = MetricsRegistry()
            w.counter("sief.build.cases").inc(worker + 1)
            w.gauge("pll.last_build.vertices").set(100)
            h = w.histogram("sief.build.affected_size", edges=(1, 10))
            h.observe(worker)
            h.observe(50)
            parent.merge_snapshot(w.snapshot())
        path = write_json_lines(parent, tmp_path / "merged.jsonl")
        rebuilt = registry_from_json_lines(read_json_lines(path))
        assert rebuilt.snapshot() == parent.snapshot()
        assert rebuilt.counter("sief.build.cases").value == 6
