"""Unit tests for repro.obs.context: trace ids, stages, attribution scope."""

import re

import pytest

from repro.obs.context import (
    RequestContext,
    attribute_page_fault,
    current_contexts,
    new_trace_id,
    parse_traceparent,
    scope,
    valid_trace_id,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- trace ids ---------------------------------------------------------------


def test_new_trace_id_is_32_hex_and_unique():
    a, b = new_trace_id(), new_trace_id()
    assert re.fullmatch(r"[0-9a-f]{32}", a)
    assert re.fullmatch(r"[0-9a-f]{32}", b)
    assert a != b


def test_parse_traceparent_accepts_w3c_form():
    tid = "4bf92f3577b34da6a3ce929d0e0e4736"
    assert parse_traceparent(f"00-{tid}-00f067aa0ba902b7-01") == tid
    # surrounding whitespace is tolerated
    assert parse_traceparent(f"  00-{tid}-00f067aa0ba902b7-01 ") == tid


@pytest.mark.parametrize(
    "value",
    [
        None,
        "",
        "garbage",
        "00-abc-def-01",  # short fields
        "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # all-zero trace id
        "00-" + "G" * 32 + "-00f067aa0ba902b7-01",  # non-hex
        "00-" + "A" * 32 + "-00f067aa0ba902b7-01",  # uppercase is invalid
    ],
)
def test_parse_traceparent_rejects_malformed(value):
    assert parse_traceparent(value) is None


def test_valid_trace_id_bounds_and_charset():
    assert valid_trace_id("abc-DEF_123")
    assert valid_trace_id("a" * 64)
    assert not valid_trace_id("a" * 65)
    assert not valid_trace_id("")
    assert not valid_trace_id(None)
    assert not valid_trace_id("has space")
    assert not valid_trace_id('quote"quote')


# -- stage accounting --------------------------------------------------------


def test_stages_accumulate_and_sum():
    clock = FakeClock()
    ctx = RequestContext("t1", clock=clock)
    with ctx.stage("parse"):
        clock.advance(0.5)
    with ctx.stage("compute"):
        clock.advance(2.0)
    with ctx.stage("compute"):
        clock.advance(1.0)
    assert ctx.stages == {"parse": 0.5, "compute": 3.0}
    assert ctx.stage_total() == pytest.approx(3.5)
    assert ctx.elapsed() == pytest.approx(3.5)


def test_stage_records_even_on_exception():
    clock = FakeClock()
    ctx = RequestContext("t1", clock=clock)
    with pytest.raises(RuntimeError):
        with ctx.stage("parse"):
            clock.advance(0.25)
            raise RuntimeError("boom")
    assert ctx.stages["parse"] == pytest.approx(0.25)


def test_negative_durations_clamped():
    ctx = RequestContext("t1")
    ctx.add_stage("queue", -1.0)
    assert ctx.stages["queue"] == 0.0


def test_decomposition_shape():
    clock = FakeClock()
    ctx = RequestContext("abc", clock=clock)
    with ctx.stage("compute"):
        clock.advance(0.125)
    ctx.note_page_fault(3)
    doc = ctx.decomposition()
    assert doc == {
        "trace_id": "abc",
        "stages": {"compute": 0.125},
        "pages_faulted": 3,
    }


def test_generated_trace_id_when_none_given():
    ctx = RequestContext()
    assert re.fullmatch(r"[0-9a-f]{32}", ctx.trace_id)


# -- attribution scope -------------------------------------------------------


def test_no_scope_no_attribution():
    assert current_contexts() is None
    attribute_page_fault()  # must be a no-op, not an error


def test_scope_charges_every_context():
    a, b = RequestContext("a"), RequestContext("b")
    with scope(a, b):
        assert current_contexts() == (a, b)
        attribute_page_fault()
        attribute_page_fault(2)
    assert a.pages_faulted == 3
    assert b.pages_faulted == 3
    assert current_contexts() is None


def test_scopes_nest_and_restore():
    a, b = RequestContext("a"), RequestContext("b")
    with scope(a):
        with scope(b):
            attribute_page_fault()
        attribute_page_fault()
    assert a.pages_faulted == 1
    assert b.pages_faulted == 1


def test_scope_restores_on_exception():
    a = RequestContext("a")
    with pytest.raises(ValueError):
        with scope(a):
            raise ValueError("boom")
    assert current_contexts() is None
