"""Table 3 — affected vertices: Avg |AU|/|V|, Avg |AU|, Avg SLEN.

Paper reference (Table 3): Wiki-Vote has the largest affected proportion
(35.8%), Ca-GrQc the smallest (1.49%); Avg SLEN co-varies with Avg |AU|
except Oregon, whose label pruning is disproportionately effective.
These orderings are the calibration targets of our synthetic analogues,
so this table is the primary shape check of the reproduction.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_table
from repro.core.affected import identify_affected


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_identify_affected_single_case(benchmark, context, name):
    """Measured operation: Algorithm 1 on one random failed edge."""
    graph = context(name).graph
    edge = random.Random(0).choice(list(graph.edges()))
    affected = benchmark(identify_affected, graph, *edge)
    assert affected.total >= 2


def test_print_table3(benchmark, context, emit):
    rows = []
    for name in DATASET_ORDER:
        ctx = context(name)
        report = ctx.report  # full BFS ALL build over every edge
        n = ctx.graph.num_vertices
        paper = DATASETS[name].paper
        rows.append(
            [
                name,
                100.0 * report.avg_affected / n,
                report.avg_affected,
                report.avg_supplemental_entries,
                paper.avg_affected_pct,
                paper.avg_affected,
                paper.avg_slen,
            ]
        )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Table 3: affected vertices (all single-edge failure cases)",
            [
                "dataset",
                "Avg |AU|/|V| %",
                "Avg |AU|",
                "Avg SLEN",
                "paper %",
                "paper |AU|",
                "paper SLEN",
            ],
            rows,
        ),
        kwargs={
            "note": (
                "shape targets: Wik largest %, CaG smallest; Oregon has "
                "large |AU| but disproportionately small SLEN"
            )
        },
        rounds=1,
        iterations=1,
    )
    emit("table3_affected", table)

    # Shape assertions (the reproduction's contract).
    pct = {row[0]: row[1] for row in rows}
    assert pct["wiki_vote"] == max(pct.values())
    assert pct["ca_grqc"] == min(pct.values())
    slen_per_au = {
        row[0]: row[3] / row[2] for row in rows if row[2] > 0
    }
    # Oregon's pruning effectiveness: fewest supplemental entries per
    # affected vertex among the high-|AU| datasets.
    assert slen_per_au["oregon"] < slen_per_au["wiki_vote"]
