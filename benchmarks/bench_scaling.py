"""Scaling bench — why the paper's query speedups are 40–500×.

Not a table/figure of the paper, but the explanation for the gap between
its Table 4 margins and ours: a BFS query's cost grows with the graph,
while a SIEF (2-hop) query touches only two label arrays.  This bench
holds topology fixed (Barabási–Albert, m=3) and doubles n, reporting the
BFS/SIEF latency ratio at each size — it must grow monotonically.

SIEF supplements are built only for the sampled failure edges (queries
never name any other edge), keeping the bench affordable at n=1600.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.reporting import render_table
from repro.baselines.bfs_query import BFSQueryBaseline
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine
from repro.graph import generators
from repro.graph.components import largest_component_subgraph
from repro.labeling.pll import build_pll

SIZES = [400, 800, 1600]
FAILED_EDGES = 30
QUERIES = 600
_ROWS = {}


def _setup(n: int):
    graph = generators.barabasi_albert(n, 3, seed=99)
    graph, _ = largest_component_subgraph(graph)
    labeling = build_pll(graph)
    edges = random.Random(6).sample(list(graph.edges()), FAILED_EDGES)
    index, _ = SIEFBuilder(graph, labeling).build(edges=edges)
    rng = random.Random(7)
    workload = [
        (rng.randrange(n), rng.randrange(n), rng.choice(edges))
        for _ in range(QUERIES)
    ]
    return graph, index, workload


def _row(n: int):
    if n not in _ROWS:
        graph, index, workload = _setup(n)
        engine = SIEFQueryEngine(index)
        baseline = BFSQueryBaseline(graph)

        started = time.perf_counter()
        for s, t, e in workload:
            engine.distance(s, t, e)
        sief = (time.perf_counter() - started) / len(workload)

        started = time.perf_counter()
        for s, t, e in workload[:200]:
            baseline.distance(s, t, e)
        bfs = (time.perf_counter() - started) / 200

        _ROWS[n] = (graph.num_vertices, graph.num_edges, bfs, sief)
    return _ROWS[n]


@pytest.mark.parametrize("n", SIZES)
def test_query_latency_at_scale(benchmark, n):
    """Measured operation: the SIEF query batch at each graph size."""
    _graph, index, workload = _setup(n)
    engine = SIEFQueryEngine(index)

    def run():
        for s, t, e in workload:
            engine.distance(s, t, e)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_print_scaling(benchmark, emit):
    rows = []
    for n in SIZES:
        nv, ne, bfs, sief = _row(n)
        rows.append([nv, ne, bfs * 1e6, sief * 1e6, bfs / sief])
    table = benchmark.pedantic(
        render_table,
        args=(
            "Scaling: BFS vs SIEF query latency as the graph grows "
            "(BA m=3)",
            ["|V|", "|E|", "BFS (us)", "SIEF (us)", "speedup"],
            rows,
        ),
        kwargs={
            "note": "the speedup must grow with graph size — "
            "extrapolating to the paper's 6k-11k-vertex graphs recovers "
            "its 40-500x Table 4 margins"
        },
        rounds=1,
        iterations=1,
    )
    emit("scaling_query_speedup", table)

    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups), "speedup did not grow with n"
    assert speedups[-1] > speedups[0] * 1.5
