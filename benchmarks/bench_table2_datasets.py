"""Table 2 — dataset statistics: |V|, |E|, indexing time IT, label size LN.

Paper reference (Table 2): PLL on six SNAP graphs; e.g. Gnutella
6,301 / 20,777 / 0.825 s / 163.647 entries per vertex.  Our datasets are
the calibrated synthetic analogues (see repro.bench.datasets), so |V|/|E|
are ~10–25× smaller and IT is CPython wall-clock; LN is directly
comparable in spirit (entries per vertex under degree ordering).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_table
from repro.labeling.pll import build_pll
from repro.labeling.stats import labeling_stats
from repro.order.strategies import by_degree


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_pll_construction(benchmark, context, name):
    """The IT column's operation: one full PLL build (degree ordering)."""
    ctx = context(name)
    graph = ctx.graph
    ordering = by_degree(graph)
    labeling = benchmark.pedantic(
        build_pll, args=(graph, ordering), rounds=3, iterations=1
    )
    assert labeling.total_entries() >= graph.num_vertices


def test_print_table2(benchmark, context, emit):
    rows = []
    for name in DATASET_ORDER:
        ctx = context(name)
        # The statistics computation is the measured operation here (the
        # build itself is measured by test_pll_construction above).
        stats = benchmark.pedantic(
            labeling_stats, args=(ctx.labeling,), rounds=1, iterations=1
        ) if name == DATASET_ORDER[0] else labeling_stats(ctx.labeling)
        paper = DATASETS[name].paper
        rows.append(
            [
                name,
                ctx.graph.num_vertices,
                ctx.graph.num_edges,
                ctx.indexing_seconds,
                stats.avg_entries,
                paper.num_vertices,
                paper.num_edges,
                paper.indexing_seconds,
                paper.label_entries_per_vertex,
            ]
        )
    emit(
        "table2_datasets",
        render_table(
            "Table 2: datasets and PLL index statistics",
            [
                "dataset",
                "|V|",
                "|E|",
                "IT (s)",
                "LN",
                "paper |V|",
                "paper |E|",
                "paper IT",
                "paper LN",
            ],
            rows,
            note=(
                "analogue graphs at reduced scale; IT is CPython wall-clock "
                "vs the paper's C++ -O3"
            ),
        ),
    )
