"""Query-throughput micro-benchmark: scalar vs batch, list vs flat backend.

Measures queries/sec on a Barabási–Albert graph (default 10k vertices,
the scale-free shape of the paper's datasets) for:

* ``dist_query`` looped one pair at a time — list backend and frozen
  flat backend;
* ``batch_dist_query`` — the vectorized join over the flat arrays, once
  per available kernel tier (pure numpy always; the compiled numba/cext
  hub-join when available — the headline ``label_queries`` /
  ``sief_queries`` entries are the accelerated tier, the numpy-tier
  reference lands under ``*_numpy``);
* ``SIEFQueryEngine.distance`` looped vs ``SIEFQueryEngine.batch_query``
  on sampled failure cases (supplements built for those edges only, so
  the benchmark stays minutes not hours at 10k vertices).

Writes a machine-readable JSON report (default:
``BENCH_query_throughput.json`` at the repo root) so the performance
trajectory is tracked PR over PR.  Run it standalone::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py
    PYTHONPATH=src python benchmarks/bench_query_throughput.py \
        --vertices 2000 --queries 20000 --out /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.query import batch_dist_query, dist_query
from repro.labeling.stats import labeling_stats
from repro.core.builder import SIEFBuilder
from repro.core.query import SIEFQueryEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_query_throughput.json"

GRAPH_SEED = 7
WORKLOAD_SEED = 42


def _pairs(n: int, count: int, rng: random.Random) -> np.ndarray:
    return np.array(
        [(rng.randrange(n), rng.randrange(n)) for _ in range(count)],
        dtype=np.int64,
    )


def _qps(elapsed: float, count: int) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def bench_label_queries(listed, frozen, pairs: np.ndarray, scalar_count: int):
    """Scalar (both backends) vs batch throughput on Equation 1."""
    scalar_pairs = pairs[:scalar_count]

    # Warm the frozen backend's scalar cache (dense prefix + residual
    # lists, built once per labeling) outside the timed region: the QPS
    # figures are steady-state throughput, not first-query latency.
    dist_query(frozen, int(pairs[0][0]), int(pairs[0][1]))

    t0 = time.perf_counter()
    for s, t in scalar_pairs:
        dist_query(listed, int(s), int(t))
    scalar_list_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for s, t in scalar_pairs:
        dist_query(frozen, int(s), int(t))
    scalar_flat_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch = batch_dist_query(frozen, pairs)
    batch_s = time.perf_counter() - t0

    # Exactness spot-check: batch answers equal the scalar path.
    check = np.array(
        [dist_query(listed, int(s), int(t)) for s, t in pairs[:200]],
        dtype=np.float64,
    )
    assert np.array_equal(batch[:200], check), "batch/scalar mismatch"

    scalar_list_qps = _qps(scalar_list_s, len(scalar_pairs))
    scalar_flat_qps = _qps(scalar_flat_s, len(scalar_pairs))
    batch_qps = _qps(batch_s, len(pairs))
    return {
        "scalar_queries": len(scalar_pairs),
        "batch_queries": len(pairs),
        "scalar_list_qps": scalar_list_qps,
        "scalar_flat_qps": scalar_flat_qps,
        "batch_qps": batch_qps,
        "batch_over_scalar_list": batch_qps / scalar_list_qps,
        "batch_over_scalar_flat": batch_qps / scalar_flat_qps,
    }


def bench_sief_queries(graph, listed, frozen, num_edges: int, count: int):
    """Engine scalar loop vs engine batch on sampled failure cases."""
    rng = random.Random(WORKLOAD_SEED + 1)
    edges = sorted(graph.edges())
    sample = rng.sample(edges, min(num_edges, len(edges)))
    index, _ = SIEFBuilder(graph, listed).build(edges=sample)
    index.labeling = frozen
    index.freeze()
    engine = SIEFQueryEngine(index)

    n = graph.num_vertices
    per_edge = max(1, count // len(sample))
    scalar_per_edge = min(per_edge, 4000)

    scalar_s = 0.0
    batch_s = 0.0
    scalar_n = 0
    batch_n = 0
    for edge in sample:
        pairs = _pairs(n, per_edge, rng)
        t0 = time.perf_counter()
        got = engine.batch_query(edge, pairs)
        batch_s += time.perf_counter() - t0
        batch_n += len(pairs)

        scalar_pairs = pairs[:scalar_per_edge]
        t0 = time.perf_counter()
        ref = [
            engine.distance(int(s), int(t), edge) for s, t in scalar_pairs
        ]
        scalar_s += time.perf_counter() - t0
        scalar_n += len(scalar_pairs)
        assert np.array_equal(
            got[: len(ref)], np.asarray(ref, dtype=np.float64)
        ), f"engine batch/scalar mismatch on {edge}"

    scalar_qps = _qps(scalar_s, scalar_n)
    batch_qps = _qps(batch_s, batch_n)
    return {
        "edges_sampled": len(sample),
        "scalar_queries": scalar_n,
        "batch_queries": batch_n,
        "engine_scalar_qps": scalar_qps,
        "engine_batch_qps": batch_qps,
        "batch_over_scalar": batch_qps / scalar_qps,
    }


def run(
    vertices: int,
    attach: int,
    queries: int,
    sief_edges: int,
    out: Path,
    metrics_out: Path = None,
):
    """Run the benchmark; optionally emit a metrics sidecar.

    A registry is installed only when ``metrics_out`` is given — the
    measured throughput numbers stay instrumentation-free by default, so
    comparing a run with and without the flag doubles as an overhead
    measurement.
    """
    from repro.obs import MetricsRegistry, TraceRecorder, hooks, write_json_lines

    registry = recorder = None
    if metrics_out is not None:
        registry = MetricsRegistry()
        recorder = TraceRecorder(capacity=4096)
        hooks.install(registry, recorder)
    try:
        report = _run_impl(vertices, attach, queries, sief_edges, out)
    finally:
        if registry is not None:
            hooks.uninstall()
    if registry is not None:
        write_json_lines(registry, metrics_out, recorder)
        print(f"metrics sidecar written to {metrics_out}", flush=True)
    return report


def _run_impl(vertices: int, attach: int, queries: int, sief_edges: int, out: Path):
    print(f"generating BA graph: n={vertices}, attach={attach}", flush=True)
    graph = generators.barabasi_albert(vertices, attach, seed=GRAPH_SEED)

    t0 = time.perf_counter()
    listed = build_pll(graph)
    pll_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    frozen = listed.copy().freeze()
    freeze_seconds = time.perf_counter() - t0
    stats = labeling_stats(listed)
    print(
        f"PLL built in {pll_seconds:.1f}s "
        f"({stats.total_entries} entries, avg {stats.avg_entries:.1f}); "
        f"freeze {freeze_seconds * 1e3:.0f}ms",
        flush=True,
    )

    rng = random.Random(WORKLOAD_SEED)
    pairs = _pairs(vertices, queries, rng)
    scalar_count = min(queries, 20000)

    # One pass per kernel tier: numpy always (the bit-identical
    # reference), plus the accelerated tier the ambient selection
    # resolves to.  Headline numbers come from the accelerated pass.
    accel_tier = kernels.effective_tier()
    tiers = ["numpy"] + ([accel_tier] if accel_tier != "numpy" else [])
    label_by_tier = {}
    sief_by_tier = {}
    for tier in tiers:
        with kernels.use_tier(tier):
            label = bench_label_queries(listed, frozen, pairs, scalar_count)
            sief = bench_sief_queries(
                graph, listed, frozen, sief_edges, queries
            )
        label_by_tier[tier] = label
        sief_by_tier[tier] = sief
        print(
            f"label queries [{tier}]: "
            f"scalar(list) {label['scalar_list_qps']:.0f} q/s, "
            f"scalar(flat) {label['scalar_flat_qps']:.0f} q/s, "
            f"batch {label['batch_qps']:.0f} q/s "
            f"({label['batch_over_scalar_list']:.1f}x over scalar list "
            "loop)",
            flush=True,
        )
        print(
            f"SIEF queries  [{tier}]: "
            f"scalar {sief['engine_scalar_qps']:.0f} q/s, "
            f"batch {sief['engine_batch_qps']:.0f} q/s "
            f"({sief['batch_over_scalar']:.1f}x)",
            flush=True,
        )
    label = label_by_tier[accel_tier]
    sief = sief_by_tier[accel_tier]
    if accel_tier != "numpy":
        print(
            f"kernel tier {accel_tier}: batch label join "
            f"{label['batch_qps'] / label_by_tier['numpy']['batch_qps']:.1f}x"
            " over the numpy tier",
            flush=True,
        )

    from repro.bench.history import env_metadata

    report = {
        "benchmark": "query_throughput",
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "env": env_metadata(),
        "graph": {
            "generator": "barabasi_albert",
            "vertices": vertices,
            "edges": graph.num_edges,
            "attach": attach,
            "seed": GRAPH_SEED,
        },
        "labeling": {
            "total_entries": stats.total_entries,
            "avg_entries": stats.avg_entries,
            "pll_build_seconds": pll_seconds,
            "freeze_seconds": freeze_seconds,
        },
        "kernel_tier": accel_tier,
        "label_queries": label,
        "sief_queries": sief,
    }
    if accel_tier != "numpy":
        report["label_queries_numpy"] = label_by_tier["numpy"]
        report["sief_queries_numpy"] = sief_by_tier["numpy"]
        report["kernel_speedup_batch"] = (
            label["batch_qps"] / label_by_tier["numpy"]["batch_qps"]
        )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", flush=True)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=3)
    parser.add_argument(
        "--queries", type=int, default=200_000, help="batch workload size"
    )
    parser.add_argument(
        "--sief-edges", type=int, default=5, help="failure cases to index"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="emit a JSON-lines metrics sidecar (installs a registry; "
        "off by default so throughput numbers stay uninstrumented)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batch beats the scalar loop by this factor",
    )
    parser.add_argument(
        "--kernels",
        choices=list(kernels.CHOICES),
        default=None,
        help="pin the kernel tier (default: auto — fastest available)",
    )
    args = parser.parse_args(argv)
    if args.kernels:
        kernels.set_tier(args.kernels)
    report = run(
        args.vertices,
        args.attach,
        args.queries,
        args.sief_edges,
        args.out,
        metrics_out=args.metrics_out,
    )
    if args.assert_speedup is not None:
        speedup = report["label_queries"]["batch_over_scalar_list"]
        if speedup < args.assert_speedup:
            print(
                f"FAIL: batch speedup {speedup:.1f}x "
                f"< required {args.assert_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
