"""Figure 7 — relabeling cost: naive estimate vs BFS AFF vs BFS ALL.

Paper reference (log-scale bars): BFS ALL wins on every dataset, by
orders of magnitude on some; BFS AFF beats the naive estimate on the
sparse collaboration/P2P graphs but loses on the big dense ones.  The
naive bar is the paper's own estimator (original indexing time × m).

Reproduction note (documented deviation): we report **two** metrics.

* *Vertices expanded* — machine-independent search work.  Here the
  paper's mechanism reproduces cleanly: BFS ALL's temporary-label
  pruning expands a fraction of BFS AFF's vertices on every dataset.
* *Wall-clock seconds* — in CPython the per-vertex prune test costs more
  than the expansion it saves at our reduced graph scale, so BFS ALL's
  wall-clock can exceed BFS AFF's even while doing far less search.  The
  paper's C++/full-scale setting sits on the other side of that
  constant-factor trade.  Both algorithms must still beat the naive
  estimate, which is Figure 7's headline.

BFS ALL is measured over the full build (cached context).  BFS AFF —
run per-edge from scratch — is measured on a random edge sample and
extrapolated to all m cases, exactly the estimator logic the paper
applies to the naive method; the sample size is printed alongside.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_grouped_bars, render_table
from repro.baselines.naive_rebuild import estimate_naive_seconds
from repro.core.builder import SIEFBuilder

AFF_SAMPLE = 120
_AFF = {}


def _aff_measured(ctx):
    """(relabel seconds, expanded vertices), extrapolated from a sample."""
    name = ctx.spec.name
    if name not in _AFF:
        edges = list(ctx.graph.edges())
        sample = random.Random(3).sample(edges, min(AFF_SAMPLE, len(edges)))
        builder = SIEFBuilder(ctx.graph, ctx.labeling, algorithm="bfs_aff")
        _index, report = builder.build(edges=sample)
        scale = len(edges) / len(sample)
        _AFF[name] = (
            report.relabel_seconds * scale,
            report.relabel_expanded * scale,
        )
    return _AFF[name]


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_bfs_aff_sample(benchmark, context, name):
    """Measured operation: BFS AFF relabel on a 12-edge sample."""
    ctx = context(name)
    edges = random.Random(4).sample(
        list(ctx.graph.edges()), min(12, ctx.graph.num_edges)
    )
    builder = SIEFBuilder(ctx.graph, ctx.labeling, algorithm="bfs_aff")

    def run():
        builder.build(edges=edges)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_print_figure7(benchmark, context, emit):
    groups, time_values, work_values, rows = [], [], [], []
    for name in DATASET_ORDER:
        ctx = context(name)
        naive = estimate_naive_seconds(
            ctx.indexing_seconds, ctx.graph.num_edges
        )
        aff_s, aff_exp = _aff_measured(ctx)
        all_s = ctx.report.relabel_seconds
        all_exp = ctx.report.relabel_expanded
        groups.append(DATASETS[name].short)
        time_values.append([naive, aff_s, all_s])
        work_values.append([float(aff_exp), float(all_exp)])
        rows.append(
            [
                name,
                naive,
                aff_s,
                all_s,
                int(aff_exp),
                int(all_exp),
                aff_exp / all_exp if all_exp else 0.0,
            ]
        )
    time_chart = render_grouped_bars(
        "Figure 7a: relabeling wall-clock (seconds)",
        groups,
        ["naive est.", "BFS AFF", "BFS ALL"],
        time_values,
        log_scale=True,
        unit="s",
    )
    work_chart = render_grouped_bars(
        "Figure 7b: relabeling search work (vertices expanded)",
        groups,
        ["BFS AFF", "BFS ALL"],
        work_values,
        log_scale=True,
    )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Figure 7 (data): relabeling cost",
            [
                "dataset",
                "naive est. (s)",
                f"AFF (s, {AFF_SAMPLE}-edge sample)",
                "ALL (s)",
                "AFF expanded",
                "ALL expanded",
                "AFF/ALL work",
            ],
            rows,
        ),
        kwargs={
            "note": "expanded-vertex counts reproduce the paper's "
            "ordering (ALL << AFF); CPython constant factors can invert "
            "the wall-clock at this scale — see module docstring"
        },
        rounds=1,
        iterations=1,
    )
    emit(
        "fig7_labeling_time",
        time_chart + "\n\n" + work_chart + "\n\n" + table,
    )

    # The paper's mechanism: early pruning does less search.  Individual
    # clustered datasets can invert (a pruned vertex forces the BFS to
    # reach remaining targets via wider detours before it can stop), so
    # the contract is majority-wise and in aggregate.
    wins = sum(1 for row in rows if row[5] < row[4])
    assert wins >= len(rows) - 2, f"pruning helped on only {wins} datasets"
    assert sum(row[5] for row in rows) < sum(row[4] for row in rows)
    for name, naive, aff_s, all_s, _aff_exp, _all_exp, _ratio in rows:
        # The paper's headline: both relabel strategies beat per-case
        # full reindexing.
        assert all_s < naive, f"{name}: BFS ALL slower than naive estimate"
        assert aff_s < naive, f"{name}: BFS AFF slower than naive estimate"
