"""Ablation — vertex ordering strategy (not in the paper's evaluation).

The paper builds on orderings implicitly (PLL uses degree order; HHL is
cited for "smaller labelings from better orders").  This ablation
quantifies the choice on our datasets: degree ordering vs random vs
approximate closeness, measured by original label entries (OLEN) and by
the supplemental entries (SLEN) a full SIEF build produces on top.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.reporting import render_table
from repro.core.builder import SIEFBuilder
from repro.labeling.pll import build_pll
from repro.order.strategies import make_ordering

# Hub-structured datasets, where ordering quality has signal; on the
# near-regular wiki_vote ring every ordering is equally uninformed.
DATASETS_USED = ["ca_grqc", "gnutella"]
STRATEGIES = ["degree", "degree-neighborhood", "closeness", "random"]
SAMPLE_EDGES = 80


def _strategy_kwargs(strategy):
    return {"seed": 0} if strategy in ("random", "closeness") else {}


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pll_under_ordering(benchmark, context, strategy):
    """Measured operation: PLL build under each ordering (Ca-GrQc)."""
    graph = context("ca_grqc").graph
    ordering = make_ordering(graph, strategy, **_strategy_kwargs(strategy))
    labeling = benchmark.pedantic(
        build_pll, args=(graph, ordering), rounds=1, iterations=1
    )
    assert labeling.total_entries() > 0


def test_print_ordering_ablation(benchmark, context, emit):
    rows = []
    for name in DATASETS_USED:
        graph = context(name).graph
        edges = random.Random(5).sample(
            list(graph.edges()), min(SAMPLE_EDGES, graph.num_edges)
        )
        for strategy in STRATEGIES:
            ordering = make_ordering(
                graph, strategy, **_strategy_kwargs(strategy)
            )
            labeling = build_pll(graph, ordering)
            index, report = SIEFBuilder(graph, labeling).build(edges=edges)
            rows.append(
                [
                    name,
                    strategy,
                    labeling.total_entries(),
                    index.total_supplemental_entries(),
                    report.relabel_seconds,
                ]
            )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Ablation: vertex ordering strategy "
            f"({SAMPLE_EDGES}-edge failure sample)",
            ["dataset", "ordering", "OLEN", "SLEN (sample)", "relabel (s)"],
            rows,
        ),
        kwargs={
            "note": "degree-style orderings should dominate random on "
            "both label sizes, as the 2-hop labeling literature predicts"
        },
        rounds=1,
        iterations=1,
    )
    emit("ablation_ordering", table)

    # Shape: on each dataset, degree ordering beats random on OLEN.
    for name in DATASETS_USED:
        olen = {
            row[1]: row[2] for row in rows if row[0] == name
        }
        assert olen["degree"] < olen["random"]
