"""Table 5 — total identification time for all single-edge failure cases.

Paper reference (Table 5): 4.3 s (Ca-GrQc) to 612 s (Wiki-Vote); the
paper attributes the speed to identifying affected vertices "in a BFS
manner" against one endpoint of the failed edge.  Our column is the
summed IDENTIFY stage of the full build (same definition), on the
analogue datasets.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_table
from repro.core.builder import SIEFBuilder


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_identification_sample(benchmark, context, name):
    """Measured operation: IDENTIFY over a 50-edge sample (fresh builder)."""
    ctx = context(name)
    edges = list(ctx.graph.edges())
    sample = random.Random(2).sample(edges, min(50, len(edges)))
    builder = SIEFBuilder(ctx.graph, ctx.labeling)

    def run():
        for u, v in sample:
            builder.build_case(u, v)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_print_table5(benchmark, context, emit):
    rows = []
    for name in DATASET_ORDER:
        ctx = context(name)
        paper = DATASETS[name].paper
        rows.append(
            [
                name,
                ctx.report.identify_seconds,
                ctx.graph.num_edges,
                ctx.report.identify_seconds / ctx.graph.num_edges * 1e3,
                paper.identification_seconds,
            ]
        )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Table 5: total identification time (all failure cases)",
            [
                "dataset",
                "identify (s)",
                "cases",
                "per case (ms)",
                "paper total (s)",
            ],
            rows,
        ),
        kwargs={
            "note": "IDENTIFY = distance vectors + Algorithm 1 flood, "
            "summed over every edge of the graph"
        },
        rounds=1,
        iterations=1,
    )
    emit("table5_identification", table)
