"""Serving-layer load generator: micro-batching under real concurrency.

Drives a live in-process server (real sockets, real HTTP, the real
micro-batcher) through three phases:

1. **closed-loop, 1 client** — sequential ``/dist`` queries; the
   baseline a naive one-connection consumer sees.
2. **closed-loop, N clients** (default 64) — the same queries from N
   concurrent connections; the micro-batcher coalesces them into
   vectorized ``batch_query`` calls, and the ratio over phase 1 is the
   headline number (the acceptance bar is >= 5x).
3. **open-loop Poisson arrivals** — queries arrive at an *offered* rate
   regardless of completions (exponential inter-arrival gaps), the
   honest way to measure latency under load: p50/p99/p999 and achieved
   vs offered qps.

Writes ``BENCH_serve.json`` (same env-fingerprint shape as the other
BENCH files) and optionally appends per-phase samples to the bench
history so ``sief bench compare`` can gate regressions::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --duration 1 --clients 16 --offered-qps 500 --out /tmp/s.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.history import env_metadata  # noqa: E402
from repro.obs.chrometrace import write_chrome_trace  # noqa: E402
from repro.obs.events import EventLog  # noqa: E402
from repro.obs.trace import TraceRecorder  # noqa: E402
from repro.core.builder import SIEFBuilder  # noqa: E402
from repro.core.index import SIEFIndex  # noqa: E402
from repro.core.query import SIEFQueryEngine  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.labeling.pll import build_pll  # noqa: E402
from repro.serve.client import AsyncServeClient  # noqa: E402
from repro.serve.inprocess import InProcessServer  # noqa: E402
from repro.serve.server import ServeConfig  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

GRAPH_SEED = 7
WORKLOAD_SEED = 42


def build_serving_index(vertices: int, attach: int, cases: int):
    """A frozen, npz-round-tripped, memory-mapped serving index."""
    graph = generators.barabasi_albert(vertices, attach, seed=GRAPH_SEED)
    rng = random.Random(GRAPH_SEED)
    edges = sorted(graph.edges())
    sampled = rng.sample(edges, min(cases, len(edges)))
    labeling = build_pll(graph)
    index, _report = SIEFBuilder(graph, labeling).build(edges=sampled)
    index.freeze()
    tmp = tempfile.TemporaryDirectory(prefix="sief-bench-serve-")
    store = Path(tmp.name) / "index.npz"
    index.save_npz(store)
    mapped = SIEFIndex.load(store, mmap_mode="r")
    return graph, sampled, SIEFQueryEngine(mapped), tmp


def make_queries(n: int, edges, count: int, seed: int):
    rng = random.Random(seed)
    return [
        (rng.choice(edges), (rng.randrange(n), rng.randrange(n)))
        for _ in range(count)
    ]


async def closed_loop(host, port, queries, num_clients: int, duration: float):
    """N clients, each issuing sequential single queries until the deadline.

    Returns (completed, elapsed, latencies).
    """
    deadline = time.perf_counter() + duration
    latencies = []

    async def client_loop(offset: int):
        done = 0
        async with AsyncServeClient(host, port) as client:
            i = offset
            while time.perf_counter() < deadline:
                edge, pair = queries[i % len(queries)]
                t0 = time.perf_counter()
                await client.distance(pair[0], pair[1], edge)
                latencies.append(time.perf_counter() - t0)
                done += 1
                i += num_clients
        return done

    t0 = time.perf_counter()
    counts = await asyncio.gather(
        *(client_loop(k) for k in range(num_clients))
    )
    elapsed = time.perf_counter() - t0
    return sum(counts), elapsed, latencies


async def open_loop(host, port, queries, offered_qps: float, duration: float,
                    num_connections: int, seed: int):
    """Poisson arrivals at ``offered_qps``; latency measured per query.

    Arrivals are scheduled up front from exponential gaps and fired on
    time whether or not earlier queries finished — queueing delay shows
    up in the latencies instead of silently throttling the offered load.
    Connections are a fixed pool; an arrival grabs any free connection
    or waits (that wait is part of its measured latency).
    """
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    while t < duration:
        arrivals.append(t)
        t += rng.expovariate(offered_qps)

    pool: asyncio.Queue = asyncio.Queue()
    clients = []
    for _ in range(num_connections):
        c = AsyncServeClient(host, port)
        await c.connect()
        clients.append(c)
        pool.put_nowait(c)

    latencies = []
    errors = [0]

    async def fire(idx: int):
        edge, pair = queries[idx % len(queries)]
        t0 = time.perf_counter()
        client = await pool.get()
        try:
            await client.distance(pair[0], pair[1], edge)
            latencies.append(time.perf_counter() - t0)
        except Exception:
            errors[0] += 1
        finally:
            pool.put_nowait(client)

    start = time.perf_counter()
    tasks = []
    for idx, at in enumerate(arrivals):
        delay = start + at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(idx)))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - start
    for c in clients:
        await c.close()
    return latencies, errors[0], elapsed, len(arrivals)


def percentiles(latencies):
    if not latencies:
        return {}
    arr = np.sort(np.asarray(latencies))

    def pct(p):
        return float(arr[min(len(arr) - 1, int(len(arr) * p))])

    return {
        "p50_ms": pct(0.50) * 1e3,
        "p90_ms": pct(0.90) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "p999_ms": pct(0.999) * 1e3,
        "max_ms": float(arr[-1]) * 1e3,
        "mean_ms": float(arr.mean()) * 1e3,
    }


def run(args) -> dict:
    graph, edges, engine, tmp = build_serving_index(
        args.vertices, args.attach, args.cases
    )
    queries = make_queries(
        graph.num_vertices, edges, 4096, WORKLOAD_SEED
    )
    events = None
    if args.event_log or args.trace_sample is not None:
        events = EventLog(
            capacity=4096,
            sample=1.0 if args.trace_sample is None else args.trace_sample,
            sink=args.event_log,
        )
    tracer = TraceRecorder(capacity=65536) if args.trace_out else None
    config = ServeConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_limit=args.queue_limit,
        events=events,
        tracer=tracer,
    )
    report = {
        "benchmark": "serve",
        "created_unix": int(time.time()),
        "env": env_metadata(),
        "graph": {
            "generator": "barabasi_albert",
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "attach": args.attach,
            "seed": GRAPH_SEED,
            "failure_cases": len(edges),
        },
        "config": {
            "max_batch": args.max_batch,
            "max_delay": args.max_delay,
            "queue_limit": args.queue_limit,
            "clients": args.clients,
            "duration_seconds": args.duration,
            "trace_sample": args.trace_sample,
            "event_log": bool(args.event_log),
        },
    }

    with InProcessServer(engine, config) as srv:
        single_done, single_elapsed, single_lat = asyncio.run(
            closed_loop(srv.host, srv.port, queries, 1, args.duration)
        )
        single_qps = single_done / single_elapsed
        print(
            f"closed-loop  1 client : {single_done} queries in "
            f"{single_elapsed:.2f}s -> {single_qps:.0f} qps"
        )

        multi_done, multi_elapsed, multi_lat = asyncio.run(
            closed_loop(
                srv.host, srv.port, queries, args.clients, args.duration
            )
        )
        multi_qps = multi_done / multi_elapsed
        speedup = multi_qps / single_qps if single_qps else float("inf")
        hist = srv.registry.histograms.get("serve.batch.size")
        mean_batch = (hist.sum / hist.count) if hist and hist.count else 0.0
        print(
            f"closed-loop {args.clients:2d} clients: {multi_done} queries in "
            f"{multi_elapsed:.2f}s -> {multi_qps:.0f} qps "
            f"({speedup:.1f}x single, mean batch {mean_batch:.1f})"
        )

        offered = args.offered_qps or max(200.0, round(multi_qps * 0.6, -2))
        open_lat, open_errors, open_elapsed, offered_n = asyncio.run(
            open_loop(
                srv.host,
                srv.port,
                queries,
                offered,
                args.duration,
                args.clients,
                WORKLOAD_SEED,
            )
        )
        achieved = len(open_lat) / open_elapsed if open_elapsed else 0.0
        pcts = percentiles(open_lat)
        print(
            f"open-loop Poisson: offered {offered:.0f} qps, achieved "
            f"{achieved:.0f} qps, p50 {pcts.get('p50_ms', 0):.2f}ms, "
            f"p99 {pcts.get('p99_ms', 0):.2f}ms, "
            f"p999 {pcts.get('p999_ms', 0):.2f}ms, errors {open_errors}"
        )
        metrics = srv.registry.snapshot()

    tmp.cleanup()
    report["closed_loop"] = {
        "single_qps": single_qps,
        "single_seconds_per_query": 1.0 / single_qps,
        "single_latency": percentiles(single_lat),
        "concurrent_clients": args.clients,
        "concurrent_qps": multi_qps,
        "concurrent_seconds_per_query": 1.0 / multi_qps,
        "concurrent_latency": percentiles(multi_lat),
        "speedup": speedup,
        "mean_batch_size": mean_batch,
    }
    report["open_loop"] = {
        "offered_qps": offered,
        "offered_queries": offered_n,
        "achieved_qps": achieved,
        "completed": len(open_lat),
        "errors": open_errors,
        **pcts,
    }
    report["server_metrics"] = {
        "counters": metrics["counters"],
        "batch_size_histogram": metrics["histograms"].get("serve.batch.size"),
    }
    if events is not None:
        report["event_log"] = events.stats()
        events.close()
        if args.event_log:
            print(f"event log written to {args.event_log}")
    if tracer is not None:
        trace_path = write_chrome_trace(tracer, args.trace_out)
        print(f"chrome trace written to {trace_path}")

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out}")

    if args.latency_out:
        side = Path(args.latency_out)
        side.parent.mkdir(parents=True, exist_ok=True)
        with side.open("w") as fh:
            for name, lat in (
                ("closed_single", single_lat),
                ("closed_concurrent", multi_lat),
                ("open_loop", open_lat),
            ):
                for v in lat:
                    fh.write(json.dumps({"phase": name, "seconds": v}) + "\n")
        print(f"latency sidecar written to {side}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--vertices", type=int, default=2000)
    parser.add_argument("--attach", type=int, default=3)
    parser.add_argument(
        "--cases", type=int, default=8, help="failure cases to build and query"
    )
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument(
        "--duration", type=float, default=3.0, help="seconds per phase"
    )
    parser.add_argument(
        "--offered-qps",
        type=float,
        default=None,
        help="open-loop offered rate (default: 60%% of measured concurrent qps)",
    )
    parser.add_argument("--max-batch", type=int, default=512)
    parser.add_argument("--max-delay", type=float, default=0.002)
    parser.add_argument("--queue-limit", type=int, default=65536)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument(
        "--latency-out",
        default=None,
        help="write per-query latencies as JSON lines (CI artifact)",
    )
    parser.add_argument(
        "--event-log",
        default=None,
        metavar="PATH",
        help="serve with a structured event log sinking JSONL to PATH",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="event-log head-sampling rate in [0,1]; 0.0 measures the "
        "sampling-off overhead floor (slow/error events still recorded)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace of the server's batcher spans to PATH",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless concurrent qps beats single-client "
        "qps by this factor",
    )
    args = parser.parse_args(argv)
    report = run(args)
    if args.assert_speedup is not None:
        speedup = report["closed_loop"]["speedup"]
        if speedup < args.assert_speedup:
            print(
                f"FAIL: concurrent speedup {speedup:.1f}x "
                f"< required {args.assert_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
