"""Shared benchmark fixtures.

Every module in this suite regenerates one table or figure of the paper's
evaluation (§5).  Expensive artifacts (graphs, labelings, full SIEF
builds) are memoized per process by :mod:`repro.bench.runner`, so the
whole suite pays one build per dataset regardless of how many benches
consume it.

Each bench writes its rendered table/figure to
``benchmarks/results/<name>.txt`` *and* prints it, so results survive
pytest's output capture.  EXPERIMENTS.md is assembled from these files.
Every emitted artifact — rendered text and metrics sidecar alike — is
stamped with the host/toolchain fingerprint from
:func:`repro.bench.history.env_metadata`, because a timing number that
doesn't name its machine cannot be compared to anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.history import env_metadata, peak_rss_bytes
from repro.bench.reporting import render_env
from repro.bench.runner import get_context
from repro.obs import MetricsRegistry, hooks, write_json_lines

RESULTS_DIR = Path(__file__).parent / "results"

# One fingerprint per session; identical on every artifact it stamps.
ENV_META = env_metadata()


def _append_env_line(path: Path) -> None:
    """Append the ``{"type": "env", ...}`` record to a JSONL sidecar.

    ``peak_rss_bytes`` is re-sampled at write time (not at session
    start) so each sidecar records the true high-water mark of the work
    that preceded it — what makes memory-bound benches comparable.
    """
    meta = {**ENV_META, "peak_rss_bytes": peak_rss_bytes()}
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "env", **meta}) + "\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """One metrics registry active for the whole bench session.

    Every build and query the benchmarks run feeds it; ``emit`` snapshots
    it into a ``<name>.metrics.jsonl`` sidecar next to each rendered
    result (cumulative at the moment of emission), and the full session
    snapshot lands in ``results/session.metrics.jsonl`` at teardown.
    """
    registry = MetricsRegistry()
    prev = hooks._state()
    hooks.install(registry)
    try:
        yield registry
    finally:
        hooks._restore(prev)
        RESULTS_DIR.mkdir(exist_ok=True)
        session_path = RESULTS_DIR / "session.metrics.jsonl"
        write_json_lines(registry, session_path)
        _append_env_line(session_path)


@pytest.fixture(scope="session")
def emit(results_dir, obs_registry):
    """Write a rendered report to disk (plus metrics sidecar) and echo it."""

    def _emit(name: str, text: str) -> None:
        stamped = text + "\n" + render_env(ENV_META)
        (results_dir / f"{name}.txt").write_text(
            stamped + "\n", encoding="utf-8"
        )
        sidecar = results_dir / f"{name}.metrics.jsonl"
        write_json_lines(obs_registry, sidecar)
        _append_env_line(sidecar)
        print(f"\n{stamped}\n")

    return _emit


@pytest.fixture
def context():
    """Dataset-name -> BenchContext accessor (process-cached)."""
    return get_context
