"""Shared benchmark fixtures.

Every module in this suite regenerates one table or figure of the paper's
evaluation (§5).  Expensive artifacts (graphs, labelings, full SIEF
builds) are memoized per process by :mod:`repro.bench.runner`, so the
whole suite pays one build per dataset regardless of how many benches
consume it.

Each bench writes its rendered table/figure to
``benchmarks/results/<name>.txt`` *and* prints it, so results survive
pytest's output capture.  EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.runner import get_context

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a rendered report to disk and echo it to stdout."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture
def context():
    """Dataset-name -> BenchContext accessor (process-cached)."""
    return get_context
