"""Shared benchmark fixtures.

Every module in this suite regenerates one table or figure of the paper's
evaluation (§5).  Expensive artifacts (graphs, labelings, full SIEF
builds) are memoized per process by :mod:`repro.bench.runner`, so the
whole suite pays one build per dataset regardless of how many benches
consume it.

Each bench writes its rendered table/figure to
``benchmarks/results/<name>.txt`` *and* prints it, so results survive
pytest's output capture.  EXPERIMENTS.md is assembled from these files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.runner import get_context
from repro.obs import MetricsRegistry, hooks, write_json_lines

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """One metrics registry active for the whole bench session.

    Every build and query the benchmarks run feeds it; ``emit`` snapshots
    it into a ``<name>.metrics.jsonl`` sidecar next to each rendered
    result (cumulative at the moment of emission), and the full session
    snapshot lands in ``results/session.metrics.jsonl`` at teardown.
    """
    registry = MetricsRegistry()
    prev = (hooks.registry, hooks.tracer)
    hooks.install(registry)
    try:
        yield registry
    finally:
        hooks.registry, hooks.tracer = prev
        RESULTS_DIR.mkdir(exist_ok=True)
        write_json_lines(registry, RESULTS_DIR / "session.metrics.jsonl")


@pytest.fixture(scope="session")
def emit(results_dir, obs_registry):
    """Write a rendered report to disk (plus metrics sidecar) and echo it."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        write_json_lines(obs_registry, results_dir / f"{name}.metrics.jsonl")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture
def context():
    """Dataset-name -> BenchContext accessor (process-cached)."""
    return get_context
