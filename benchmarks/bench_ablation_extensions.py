"""Ablation — the weighted and directed SIEF extensions at dataset scale.

The paper claims (§1) the method "can be extended to weighted and/or
directed graphs" without evaluating either.  This bench puts numbers on
both extensions: per-case supplement sizes and build rates on weighted /
directed versions of a benchmark analogue, plus query latency against
the appropriate from-scratch baseline (Dijkstra / directed BFS).
"""

from __future__ import annotations

import random
import time
from collections import deque

import pytest

from repro.bench.reporting import render_table
from repro.graph.digraph import DiGraph
from repro.graph.weighted import WeightedGraph
from repro.graph.traversal import dijkstra_distances
from repro.labeling.query import INF
from repro.failures.directed import build_directed_sief
from repro.failures.weighted import build_weighted_sief

SAMPLE_QUERIES = 300


def _weighted_instance(context):
    graph = context("ca_grqc").graph
    rng = random.Random(12)
    wg = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        wg.add_edge(u, v, rng.choice([0.5, 1.0, 1.5, 2.0, 3.0]))
    return wg


def _directed_instance(context):
    graph = context("gnutella").graph
    rng = random.Random(13)
    dg = DiGraph(graph.num_vertices)
    for u, v in graph.edges():
        # Orient each edge; ~30% get the reverse arc too.
        if rng.random() < 0.5:
            u, v = v, u
        dg.add_arc(u, v)
        if rng.random() < 0.3:
            dg.add_arc(v, u)
    return dg


@pytest.mark.parametrize("variant", ["weighted", "directed"])
def test_extension_build(benchmark, context, variant):
    """Measured operation: the full extension index build."""
    if variant == "weighted":
        wg = _weighted_instance(context)
        index = benchmark.pedantic(
            build_weighted_sief, args=(wg,), rounds=1, iterations=1
        )
        assert len(index.supplements) == wg.num_edges
    else:
        dg = _directed_instance(context)
        index = benchmark.pedantic(
            build_directed_sief, args=(dg,), rounds=1, iterations=1
        )
        assert len(index.supplements) == dg.num_arcs


def test_print_extension_ablation(benchmark, context, emit):
    rows = []

    # Weighted: SIEF vs per-query Dijkstra.
    wg = _weighted_instance(context)
    started = time.perf_counter()
    w_index = build_weighted_sief(wg)
    w_build = time.perf_counter() - started
    rng = random.Random(14)
    edges = list(wg.edges())
    workload = [
        (
            rng.randrange(wg.num_vertices),
            rng.randrange(wg.num_vertices),
            rng.choice(edges)[:2],
        )
        for _ in range(SAMPLE_QUERIES)
    ]
    started = time.perf_counter()
    for s, t, e in workload:
        w_index.distance(s, t, e)
    w_query = (time.perf_counter() - started) / SAMPLE_QUERIES
    started = time.perf_counter()
    for s, t, e in workload[:100]:
        dijkstra_distances(wg, s, avoid=e)[t]
    w_base = (time.perf_counter() - started) / 100
    w_entries = sum(
        si.total_entries() for si in w_index.supplements.values()
    )
    rows.append(
        [
            "weighted (ca_grqc + weights)",
            wg.num_edges,
            w_build,
            w_entries / wg.num_edges,
            w_query * 1e6,
            w_base * 1e6,
            w_base / w_query,
        ]
    )

    # Directed: SIEF vs per-query directed BFS.
    dg = _directed_instance(context)
    started = time.perf_counter()
    d_index = build_directed_sief(dg)
    d_build = time.perf_counter() - started
    arcs = list(dg.arcs())
    workload_d = [
        (
            rng.randrange(dg.num_vertices),
            rng.randrange(dg.num_vertices),
            rng.choice(arcs),
        )
        for _ in range(SAMPLE_QUERIES)
    ]
    started = time.perf_counter()
    for s, t, arc in workload_d:
        d_index.distance(s, t, arc)
    d_query = (time.perf_counter() - started) / SAMPLE_QUERIES

    def directed_bfs(s, t, arc):
        a, b = arc
        dist = {s: 0}
        queue = deque((s,))
        while queue:
            x = queue.popleft()
            if x == t:
                return dist[x]
            for y in dg.successors(x):
                if x == a and y == b:
                    continue
                if y not in dist:
                    dist[y] = dist[x] + 1
                    queue.append(y)
        return INF

    started = time.perf_counter()
    for s, t, arc in workload_d[:100]:
        directed_bfs(s, t, arc)
    d_base = (time.perf_counter() - started) / 100
    d_entries = sum(
        si.total_entries() for si in d_index.supplements.values()
    )
    rows.append(
        [
            "directed (gnutella, oriented)",
            dg.num_arcs,
            d_build,
            d_entries / dg.num_arcs,
            d_query * 1e6,
            d_base * 1e6,
            d_base / d_query,
        ]
    )

    table = benchmark.pedantic(
        render_table,
        args=(
            "Ablation: weighted and directed SIEF extensions",
            [
                "variant",
                "cases",
                "build (s)",
                "avg SLEN",
                "SIEF query (us)",
                "baseline query (us)",
                "speedup",
            ],
            rows,
        ),
        kwargs={
            "note": "the paper claims both extensions without evaluating "
            "them; baselines are per-query Dijkstra / directed BFS"
        },
        rounds=1,
        iterations=1,
    )
    emit("ablation_extensions", table)

    for row in rows:
        assert row[6] > 1.0, f"{row[0]}: extension slower than baseline"
