"""Ablation — labeling substrate: SIEF over PLL vs over IS-Label.

The paper presents SIEF as "a generic framework" over *well-ordering*
2-hop distance labelings and names HHL/PLL/ISL as instances (§3.2).
This ablation makes that concrete: build the supplemental index over
both a PLL and an ISL labeling of the same graphs and compare original
label size, supplemental size, and relabel time.  Queries from both are
exact (property-tested in tests/test_isl.py); the interesting question
is how the substrate's label shape propagates into the supplements.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.reporting import render_table
from repro.core.builder import SIEFBuilder
from repro.labeling.isl import build_isl
from repro.labeling.pll import build_pll

DATASETS_USED = ["ca_grqc", "wiki_vote"]
SAMPLE_EDGES = 80


def _labelings(graph):
    return [
        ("pll", build_pll(graph)),
        ("isl", build_isl(graph, core_limit=24)),
    ]


@pytest.mark.parametrize("substrate", ["pll", "isl"])
def test_substrate_build(benchmark, context, substrate):
    """Measured operation: labeling construction per substrate (Ca-GrQc)."""
    graph = context("ca_grqc").graph
    build = (
        (lambda: build_pll(graph))
        if substrate == "pll"
        else (lambda: build_isl(graph, core_limit=24))
    )
    labeling = benchmark.pedantic(build, rounds=1, iterations=1)
    assert labeling.total_entries() > 0


def test_print_substrate_ablation(benchmark, context, emit):
    rows = []
    for name in DATASETS_USED:
        graph = context(name).graph
        edges = random.Random(8).sample(
            list(graph.edges()), min(SAMPLE_EDGES, graph.num_edges)
        )
        for label_name, labeling in _labelings(graph):
            index, report = SIEFBuilder(graph, labeling).build(edges=edges)
            rows.append(
                [
                    name,
                    label_name,
                    labeling.total_entries(),
                    index.total_supplemental_entries(),
                    report.relabel_seconds,
                ]
            )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Ablation: labeling substrate under SIEF "
            f"({SAMPLE_EDGES}-edge failure sample)",
            ["dataset", "substrate", "OLEN", "SLEN (sample)", "relabel (s)"],
            rows,
        ),
        kwargs={
            "note": "SIEF is exact over both substrates (tests); ISL "
            "trades bigger labels for memory-bounded construction"
        },
        rounds=1,
        iterations=1,
    )
    emit("ablation_substrate", table)

    # Both substrates must produce *some* nonempty supplemental data on
    # these datasets (they all have non-bridge failures).
    for row in rows:
        assert row[3] > 0
