"""SIEF construction benchmark: seed serial path vs the batched fast path.

Builds supplemental indexes for a sample of failure cases on a
Barabási–Albert graph (default 10k vertices — the scale-free shape of
the paper's datasets) three ways:

* ``bfs_all`` serial — the seed construction path (scalar IDENTIFY, one
  interpreted BFS per affected hub);
* ``batched`` serial — vectorized frontier IDENTIFY + bit-parallel
  RELABEL, once per available kernel tier (pure numpy always; the
  compiled numba/cext tier when one is available — the headline
  ``serial_batched`` entry is the fastest tier, and the per-tier split
  lives under ``serial_batched_by_tier``);
* ``batched`` via the shared-memory parallel driver — recorded to track
  the shm transport's end-to-end cost (on a single-core host this is
  process overhead, not speedup; the JSON records ``logical_cpus`` next
  to ``workers`` and flags oversubscription honestly).

The three indexes are asserted bit-identical before any number is
reported — a fast wrong answer is not a speedup.  Writes a
machine-readable JSON report (default: ``BENCH_sief_build.json`` at the
repo root) so the construction-time trajectory is tracked PR over PR::

    PYTHONPATH=src python benchmarks/bench_sief_build.py
    PYTHONPATH=src python benchmarks/bench_sief_build.py \
        --vertices 2000 --cases 6 --out /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro import kernels
from repro.core.builder import SIEFBuilder
from repro.core.parallel import build_sief_parallel
from repro.graph import generators
from repro.labeling.pll import build_pll
from repro.labeling.stats import labeling_stats

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sief_build.json"

GRAPH_SEED = 7
WORKLOAD_SEED = 42


def _assert_identical(reference, other, label: str) -> None:
    assert set(reference.supplements) == set(other.supplements), label
    for edge, si in reference.supplements.items():
        got = other.supplements[edge]
        assert si == got, f"{label}: supplement for {edge} differs"
        for t, sl in si.labels.items():
            assert sl.ranks == got.labels[t].ranks, (label, edge, t)
            assert sl.dists == got.labels[t].dists, (label, edge, t)


def _report_entry(report):
    return {
        "cases": report.num_cases,
        "identify_seconds": report.identify_seconds,
        "relabel_seconds": report.relabel_seconds,
        "supplemental_entries": report.total_supplemental_entries,
        "avg_affected": report.avg_affected,
    }


def run(
    vertices: int,
    attach: int,
    cases: int,
    out: Path,
    metrics_out: Path = None,
    skip_parallel: bool = False,
):
    """Run the benchmark; optionally emit a metrics sidecar."""
    from repro.obs import MetricsRegistry, TraceRecorder, hooks, write_json_lines

    registry = recorder = None
    if metrics_out is not None:
        registry = MetricsRegistry()
        recorder = TraceRecorder(capacity=4096)
        hooks.install(registry, recorder)
    try:
        report = _run_impl(vertices, attach, cases, out, skip_parallel)
    finally:
        if registry is not None:
            hooks.uninstall()
    if registry is not None:
        write_json_lines(registry, metrics_out, recorder)
        print(f"metrics sidecar written to {metrics_out}", flush=True)
    return report


def _run_impl(
    vertices: int, attach: int, cases: int, out: Path, skip_parallel: bool
):
    print(f"generating BA graph: n={vertices}, attach={attach}", flush=True)
    graph = generators.barabasi_albert(vertices, attach, seed=GRAPH_SEED)

    t0 = time.perf_counter()
    labeling = build_pll(graph)
    pll_seconds = time.perf_counter() - t0
    stats = labeling_stats(labeling)
    print(
        f"PLL built in {pll_seconds:.1f}s "
        f"({stats.total_entries} entries, avg {stats.avg_entries:.1f})",
        flush=True,
    )

    rng = random.Random(WORKLOAD_SEED)
    edges = sorted(rng.sample(sorted(graph.edges()), cases))
    print(f"building {len(edges)} failure cases per variant", flush=True)

    t0 = time.perf_counter()
    idx_scalar, rep_scalar = SIEFBuilder(graph, labeling, "bfs_all").build(
        edges=edges
    )
    scalar_seconds = time.perf_counter() - t0
    print(f"serial bfs_all (seed path): {scalar_seconds:.2f}s", flush=True)

    # Batched serial, once per kernel tier.  numpy always runs (it is
    # the reference the compiled tiers must match bit-for-bit); the
    # tier the ambient selection resolves to (auto unless --kernels /
    # SIEF_KERNELS pinned one) runs when it is accelerated.  The
    # headline `serial_batched` number is the fastest tier — what
    # `sief build` does by default under `auto`.
    accel_tier = kernels.effective_tier()
    tiers = ["numpy"] + ([accel_tier] if accel_tier != "numpy" else [])
    by_tier = {}
    for tier in tiers:
        with kernels.use_tier(tier):
            t0 = time.perf_counter()
            idx_tier, rep_tier = SIEFBuilder(
                graph, labeling, "batched"
            ).build(edges=edges)
            tier_seconds = time.perf_counter() - t0
        _assert_identical(idx_scalar, idx_tier, f"batched[{tier}] vs scalar")
        by_tier[tier] = {
            "seconds": tier_seconds,
            **_report_entry(rep_tier),
        }
        print(
            f"serial batched [{tier}]:    {tier_seconds:.2f}s "
            f"({scalar_seconds / tier_seconds:.1f}x over seed path, "
            "bit-identical)",
            flush=True,
        )
    best_tier = min(by_tier, key=lambda t: by_tier[t]["seconds"])
    batched_seconds = by_tier[best_tier]["seconds"]
    speedup = scalar_seconds / batched_seconds
    if accel_tier != "numpy":
        print(
            f"kernel tier {accel_tier}: "
            f"{by_tier['numpy']['seconds'] / by_tier[accel_tier]['seconds']:.1f}x "
            "over the numpy tier",
            flush=True,
        )

    parallel_entry = None
    if not skip_parallel:
        # Always 2 workers: with fewer the driver falls back to serial and
        # the shm transport we are here to measure never runs.
        workers = 2
        logical_cpus = os.cpu_count() or 1
        oversubscribed = workers > logical_cpus
        if oversubscribed:
            print(
                f"warning: {workers} workers on {logical_cpus} logical "
                "CPU(s) — the parallel timing below measures transport "
                "overhead under oversubscription, not parallel speedup",
                flush=True,
            )
        t0 = time.perf_counter()
        idx_par, _rep_par = build_sief_parallel(
            graph,
            labeling,
            algorithm="batched",
            workers=workers,
            edges=edges,
            shared_memory=True,
        )
        parallel_seconds = time.perf_counter() - t0
        _assert_identical(idx_scalar, idx_par, "shm parallel vs scalar")
        print(
            f"shm parallel batched (w={workers}): {parallel_seconds:.2f}s "
            f"(bit-identical; speedup only expected on multi-core hosts)",
            flush=True,
        )
        parallel_entry = {
            "workers": workers,
            "logical_cpus": logical_cpus,
            "oversubscribed": oversubscribed,
            "kernel_tier": accel_tier,
            "transport": "shared_memory",
            "seconds": parallel_seconds,
            "speedup_vs_seed": scalar_seconds / parallel_seconds,
        }

    from repro.bench.history import env_metadata

    report = {
        "benchmark": "sief_build",
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "env": env_metadata(),
        "graph": {
            "generator": "barabasi_albert",
            "vertices": vertices,
            "edges": graph.num_edges,
            "attach": attach,
            "seed": GRAPH_SEED,
        },
        "labeling": {
            "total_entries": stats.total_entries,
            "avg_entries": stats.avg_entries,
            "pll_build_seconds": pll_seconds,
        },
        "workload": {
            "cases": len(edges),
            "edges": [list(e) for e in edges],
            "seed": WORKLOAD_SEED,
        },
        "serial_bfs_all": {
            "seconds": scalar_seconds,
            **_report_entry(rep_scalar),
        },
        "serial_batched": {
            "kernel_tier": best_tier,
            **by_tier[best_tier],
        },
        "serial_batched_by_tier": by_tier,
        "batched_speedup_vs_seed": speedup,
        "kernel_tier": accel_tier,
        "kernel_speedup": (
            by_tier["numpy"]["seconds"] / by_tier[accel_tier]["seconds"]
            if accel_tier != "numpy"
            else 1.0
        ),
        "bit_identical": True,
    }
    if parallel_entry is not None:
        report["parallel_batched"] = parallel_entry
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}", flush=True)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=10_000)
    parser.add_argument("--attach", type=int, default=3)
    parser.add_argument(
        "--cases", type=int, default=8, help="failure cases to build"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="emit a JSON-lines metrics sidecar (installs a registry; "
        "off by default so build timings stay uninstrumented)",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the shm parallel variant (serial comparison only)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        help="exit nonzero unless batched beats the seed serial build "
        "by this factor",
    )
    parser.add_argument(
        "--kernels",
        choices=list(kernels.CHOICES),
        default=None,
        help="pin the kernel tier (default: auto — fastest available)",
    )
    args = parser.parse_args(argv)
    if args.kernels:
        kernels.set_tier(args.kernels)
    report = run(
        args.vertices,
        args.attach,
        args.cases,
        args.out,
        metrics_out=args.metrics_out,
        skip_parallel=args.skip_parallel,
    )
    if args.assert_speedup is not None:
        speedup = report["batched_speedup_vs_seed"]
        if speedup < args.assert_speedup:
            print(
                f"FAIL: batched build speedup {speedup:.1f}x "
                f"< required {args.assert_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
