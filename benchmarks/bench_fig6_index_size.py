"""Figure 6 — original vs supplemental index size.

Paper reference: the total (original + supplemental for *all* failure
cases) stays moderate — e.g. Gnutella 14 MB total vs 105 MB for per-case
rebuilds; Gnutella shows the smallest supplemental proportion, Facebook
the largest, Wiki-Vote the largest absolute supplement.  Sizes use the
paper-compatible 8 B/entry model (repro.labeling.stats).
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_grouped_bars, render_table
from repro.core.serialize import index_to_bytes
from repro.core.stats import sief_stats


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_index_serialization(benchmark, context, name):
    """Measured operation: serializing the full index to bytes."""
    index = context(name).index
    blob = benchmark(index_to_bytes, index)
    assert len(blob) > 0


def test_print_figure6(benchmark, context, emit):
    groups, values, rows = [], [], []
    for name in DATASET_ORDER:
        ctx = context(name)
        stats = sief_stats(ctx.index, ctx.report)
        naive_mb = ctx.graph.num_edges * stats.original_megabytes
        groups.append(DATASETS[name].short)
        values.append(
            [stats.original_megabytes, stats.supplemental_megabytes]
        )
        rows.append(
            [
                name,
                stats.original_megabytes,
                stats.supplemental_megabytes,
                stats.original_megabytes + stats.supplemental_megabytes,
                naive_mb,
            ]
        )
    chart = render_grouped_bars(
        "Figure 6: index size (MB, 8 B/entry model)",
        groups,
        ["original", "supplemental"],
        values,
    )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Figure 6 (data): index sizes",
            [
                "dataset",
                "original MB",
                "supplemental MB",
                "total MB",
                "naive per-case MB",
            ],
            rows,
        ),
        kwargs={
            "note": "'naive' = one full index per failure case (the "
            "paper's 105 MB Gnutella strawman); SIEF total must be far "
            "below it"
        },
        rounds=1,
        iterations=1,
    )
    emit("fig6_index_size", chart + "\n\n" + table)

    for row in rows:
        assert row[3] < row[4] / 5, f"{row[0]}: SIEF not compact vs naive"
