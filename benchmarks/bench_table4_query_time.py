"""Table 4 — average query time: BFS vs SIEF (µs per query).

Paper reference (Table 4): SIEF answers in 0.45–5 µs, BFS in 140–325 µs —
40× (Oregon) to 500× (Facebook) speedups.  Absolute numbers here are
CPython, so both columns are orders of magnitude slower than the paper's
C++, but the *ratio* is the reproduction target: SIEF must beat per-query
BFS by a large factor on every dataset.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_table
from repro.bench.workloads import group_by_edge, table4_workload
from repro.baselines.bfs_query import BFSQueryBaseline
from repro.core.query import SIEFQueryEngine

QUERIES = 1000
_RESULTS = {}


def _measure(fn, triples) -> float:
    """Mean seconds per query over the workload."""
    started = time.perf_counter()
    for q in triples:
        fn(q.s, q.t, q.edge)
    return (time.perf_counter() - started) / len(triples)


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_sief_query_batch(benchmark, context, name):
    """Measured operation: 1,000 SIEF queries (whole batch per round)."""
    ctx = context(name)
    engine = SIEFQueryEngine(ctx.index)
    triples = table4_workload(ctx.graph, QUERIES)

    def run():
        for q in triples:
            engine.distance(q.s, q.t, q.edge)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _RESULTS.setdefault(name, {})["sief"] = _measure(
        engine.distance, triples
    )


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_sief_query_vectorized(benchmark, context, name):
    """Measured operation: the same triples regrouped per failed edge and
    answered through the vectorized ``batch_query`` path."""
    ctx = context(name)
    engine = SIEFQueryEngine(ctx.index)
    batches = group_by_edge(table4_workload(ctx.graph, QUERIES))

    def run():
        for edge, pairs in batches:
            engine.batch_query(edge, pairs)

    benchmark.pedantic(run, rounds=3, iterations=1)
    started = time.perf_counter()
    run()
    _RESULTS.setdefault(name, {})["sief_batch"] = (
        time.perf_counter() - started
    ) / QUERIES


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_bfs_query_batch(benchmark, context, name):
    """Measured operation: the same workload through the BFS baseline."""
    ctx = context(name)
    baseline = BFSQueryBaseline(ctx.graph)
    triples = table4_workload(ctx.graph, QUERIES)[:200]

    def run():
        for q in triples:
            baseline.distance(q.s, q.t, q.edge)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.setdefault(name, {})["bfs"] = _measure(
        baseline.distance, triples
    )


def test_print_table4(benchmark, context, emit):
    rows = []
    for name in DATASET_ORDER:
        ctx = context(name)
        measured = _RESULTS.get(name, {})
        if "sief" not in measured:
            engine = SIEFQueryEngine(ctx.index)
            measured["sief"] = _measure(
                engine.distance, table4_workload(ctx.graph, QUERIES)
            )
        if "bfs" not in measured:
            baseline = BFSQueryBaseline(ctx.graph)
            measured["bfs"] = _measure(
                baseline.distance, table4_workload(ctx.graph, QUERIES)[:200]
            )
        paper = DATASETS[name].paper
        speedup = measured["bfs"] / measured["sief"]
        rows.append(
            [
                name,
                measured["bfs"] * 1e6,
                measured["sief"] * 1e6,
                speedup,
                paper.bfs_query_us,
                paper.sief_query_us,
                paper.bfs_query_us / paper.sief_query_us,
            ]
        )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Table 4: average query time (microseconds)",
            [
                "dataset",
                "BFS (us)",
                "SIEF (us)",
                "speedup",
                "paper BFS",
                "paper SIEF",
                "paper speedup",
            ],
            rows,
        ),
        kwargs={
            "note": "absolute times are CPython; the speedup column is "
            "the reproduction target (paper: 40-500x)"
        },
        rounds=1,
        iterations=1,
    )
    emit("table4_query_time", table)

    # Shape assertion: SIEF wins on every dataset.  The paper's 40-500x
    # margins come from graphs 10-25x larger than our analogues — BFS
    # query cost grows with graph size while SIEF's stays flat (see
    # bench_scaling.py for that trend) — so the absolute factor here is
    # smaller.
    for row in rows:
        assert row[3] > 1.5, f"{row[0]}: SIEF speedup {row[3]:.1f}x too low"
