"""Out-of-core scale benchmark: build and serve 1M vertices under a memory budget.

Proves the ISSUE-9 tentpole end to end on one machine:

* **Build** — a Barabási–Albert graph (default 1M vertices) is labeled
  with the compiled PLL kernel, then a sampled failure-case set is built
  through :func:`build_sief_sharded`: shard, build, spill to the segment
  store, drop.  Supplement memory stays O(shard), not O(cases).
* **Serve (paged)** — a subprocess opens the store demand-paged
  (:class:`PagedSIEFIndex`, small LRU over the segment mmap) and answers
  a fixed query workload.  Its peak RSS must stay under
  ``--memory-budget-mb``.
* **Serve (resident)** — a second subprocess loads the same store fully
  resident (every supplement and labeling byte touched) and answers the
  identical workload.  Its peak RSS is the in-RAM index footprint.

The paged and resident answer streams must be bit-identical, and the
resident footprint must exceed the paged peak by ``--assert-ratio``
(default: no assertion; the committed 1M run uses 4).  A third
subprocess that only imports the stack calibrates the interpreter
baseline, so the report separates index bytes from Python overhead.

Writes ``BENCH_sief_scale.json`` at the repo root and (with
``--history/--run``) appends ``sief_scale_build`` / ``sief_scale_serve``
records for ``sief bench compare`` gating::

    PYTHONPATH=src python benchmarks/bench_sief_scale.py
    PYTHONPATH=src python benchmarks/bench_sief_scale.py \
        --vertices 50000 --cases 12 --memory-budget-mb 512 \
        --out /tmp/scale_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sief_scale.json"

GRAPH_SEED = 7
WORKLOAD_SEED = 42


# ---------------------------------------------------------------------------
# Child processes: each measurement runs in a fresh interpreter so its
# peak RSS is the measurement, uncontaminated by the parent's build.
# ---------------------------------------------------------------------------


def _workload(store, pairs_per_case: int):
    """The fixed query stream: every stored case, same pairs each run."""
    import random

    rng = random.Random(WORKLOAD_SEED)
    n = store.num_vertices
    edges = store.case_edges()
    pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(pairs_per_case)
    ]
    return edges, pairs


def _answer_checksum(answers) -> str:
    import hashlib

    blob = ",".join(
        "inf" if a == float("inf") else str(int(a)) for a in answers
    ).encode()
    return hashlib.sha1(blob).hexdigest()


def _child_baseline(_args) -> dict:
    # Import what both serving children import, touch nothing else.
    from repro.bench.history import peak_rss_bytes
    from repro.core.lazy import PagedSIEFIndex  # noqa: F401
    from repro.core.query import SIEFQueryEngine  # noqa: F401
    from repro.core.segstore import SegmentStore  # noqa: F401

    return {"peak_rss_bytes": peak_rss_bytes()}


def _child_paged(args) -> dict:
    from repro.bench.history import peak_rss_bytes
    from repro.core.lazy import PagedSIEFIndex
    from repro.core.query import SIEFQueryEngine
    from repro.core.segstore import SegmentStore

    store = SegmentStore(args.store_path)
    index = PagedSIEFIndex(store, capacity=args.cache_cases)
    engine = SIEFQueryEngine(index)
    edges, pairs = _workload(store, args.pairs)
    answers = []
    reps = []
    for _ in range(args.repeat):
        t0 = time.perf_counter()
        answers = []
        for edge in edges:
            answers.extend(float(d) for d in engine.batch_query(edge, pairs))
        reps.append(time.perf_counter() - t0)
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "seconds_per_rep": reps,
        "queries_per_rep": len(edges) * len(pairs),
        "checksum": _answer_checksum(answers),
        "lru": {
            "capacity": args.cache_cases,
            "resident": index.resident_cases,
            "hits": index.hits,
            "misses": index.misses,
            "evictions": index.evictions,
        },
    }


def _child_resident(args) -> dict:
    import numpy as np

    from repro.bench.history import peak_rss_bytes
    from repro.core.query import SIEFQueryEngine
    from repro.core.segstore import SegmentStore

    store = SegmentStore(args.store_path)
    index = store.to_index()
    # The rebuilt supplements and the labeling are zero-copy views of the
    # store's mmaps; fault every byte in so this process's RSS is the
    # true fully-resident footprint.
    touched = 0
    lab = index.labeling
    for arr in (lab.offsets, lab.hubs_flat, lab.dists_flat):
        touched += int(arr.sum())
    for si in index.supplements.values():
        for arr in (
            si._side_u, si._side_v, si._vertices,
            si._entry_offsets, si._ranks, si._dists,
        ):
            touched += int(np.asarray(arr).sum())
    engine = SIEFQueryEngine(index)
    edges, pairs = _workload(store, args.pairs)
    answers = []
    for edge in edges:
        answers.extend(float(d) for d in engine.batch_query(edge, pairs))
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "checksum": _answer_checksum(answers),
        "touched": touched,
    }


_CHILDREN = {
    "baseline": _child_baseline,
    "paged": _child_paged,
    "resident": _child_resident,
}


def _spawn(mode: str, args, extra=()) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    cmd = [
        sys.executable, os.fspath(Path(__file__).resolve()),
        "--child", mode,
        "--store", os.fspath(args.store_path),
        "--cache-cases", str(args.cache_cases),
        "--pairs", str(args.pairs),
        "--repeat", str(args.repeat),
        *extra,
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{mode} child exited {proc.returncode}")
    return json.loads(proc.stdout.splitlines()[-1])


# ---------------------------------------------------------------------------
# Parent: build out of core, measure the three children, write the report
# ---------------------------------------------------------------------------


def run(args) -> dict:
    from repro.bench.history import env_metadata, peak_rss_bytes
    from repro.core.segstore import build_sief_sharded
    from repro.graph import generators

    print(
        f"generating BA graph: n={args.vertices}, attach={args.attach}",
        flush=True,
    )
    t0 = time.perf_counter()
    graph = generators.barabasi_albert(
        args.vertices, args.attach, seed=GRAPH_SEED
    )
    gen_seconds = time.perf_counter() - t0

    import random

    rng = random.Random(WORKLOAD_SEED)
    all_edges = sorted(graph.edges())
    cases = sorted(rng.sample(all_edges, min(args.cases, len(all_edges))))
    print(
        f"sharded build: {len(cases)} cases, shard_size={args.shard_size}",
        flush=True,
    )
    t0 = time.perf_counter()
    store_path, report = build_sief_sharded(
        graph,
        args.store_path,
        edges=cases,
        shard_size=args.shard_size,
    )
    build_seconds = time.perf_counter() - t0
    args.store_path = store_path
    store_bytes = sum(
        f.stat().st_size for f in Path(store_path).iterdir()
    )
    print(
        f"built in {build_seconds:.1f}s: {report.num_shards} shards, "
        f"{report.total_entries} entries, "
        f"{store_bytes / 1e6:.1f} MB on disk, "
        f"max {report.max_resident_cases} cases resident "
        f"(parent peak RSS {peak_rss_bytes() / 1e6:.0f} MB)",
        flush=True,
    )

    del graph, all_edges  # the serving children never see the graph

    baseline = _spawn("baseline", args)
    paged = _spawn("paged", args)
    resident = _spawn("resident", args)

    if paged["checksum"] != resident["checksum"]:
        raise AssertionError(
            "paged and resident serving disagree: "
            f"{paged['checksum']} != {resident['checksum']}"
        )

    budget = args.memory_budget_mb * 1_000_000
    paged_rss = paged["peak_rss_bytes"]
    resident_rss = resident["peak_rss_bytes"]
    baseline_rss = baseline["peak_rss_bytes"]
    ratio = resident_rss / paged_rss
    serve_seconds = min(paged["seconds_per_rep"])
    qps = paged["queries_per_rep"] / serve_seconds
    print(
        f"paged serve:    peak RSS {paged_rss / 1e6:.0f} MB "
        f"(budget {args.memory_budget_mb} MB), "
        f"{qps:,.0f} queries/s, lru={paged['lru']}",
        flush=True,
    )
    print(
        f"resident serve: peak RSS {resident_rss / 1e6:.0f} MB "
        f"({ratio:.1f}x the paged peak; interpreter baseline "
        f"{baseline_rss / 1e6:.0f} MB)",
        flush=True,
    )

    ok = True
    if paged_rss > budget:
        print(
            f"FAIL: paged peak RSS {paged_rss / 1e6:.0f} MB exceeds the "
            f"{args.memory_budget_mb} MB budget",
            file=sys.stderr,
        )
        ok = False
    if args.assert_ratio is not None and ratio < args.assert_ratio:
        print(
            f"FAIL: resident/paged RSS ratio {ratio:.1f}x below required "
            f"{args.assert_ratio}x",
            file=sys.stderr,
        )
        ok = False

    out = {
        "benchmark": "sief_scale",
        "created_unix": int(time.time()),
        "env": env_metadata(),
        "graph": {
            "generator": "barabasi_albert",
            "vertices": args.vertices,
            "edges": graph_edges_count(args),
            "attach": args.attach,
            "seed": GRAPH_SEED,
            "generate_seconds": gen_seconds,
        },
        "build": {
            "cases": report.num_cases,
            "shard_size": args.shard_size,
            "num_shards": report.num_shards,
            "total_entries": report.total_entries,
            "spilled_bytes": report.spilled_bytes,
            "max_resident_cases": report.max_resident_cases,
            "seconds": build_seconds,
            "store_bytes": store_bytes,
            "parent_peak_rss_bytes": peak_rss_bytes(),
        },
        "serve": {
            "workload": {
                "cases": report.num_cases,
                "pairs_per_case": args.pairs,
                "seed": WORKLOAD_SEED,
                "repeat": args.repeat,
            },
            "baseline_rss_bytes": baseline_rss,
            "paged": {
                "peak_rss_bytes": paged_rss,
                "over_baseline_bytes": paged_rss - baseline_rss,
                "seconds_per_rep": paged["seconds_per_rep"],
                "queries_per_second": qps,
                "lru": paged["lru"],
            },
            "resident": {
                "peak_rss_bytes": resident_rss,
                "over_baseline_bytes": resident_rss - baseline_rss,
            },
            "rss_ratio": ratio,
            "memory_budget_mb": args.memory_budget_mb,
            "within_budget": paged_rss <= budget,
            "answers_bit_identical": True,
        },
        "passed": ok,
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}", flush=True)

    if args.history is not None:
        _record_history(args, out)
    return out


def graph_edges_count(args) -> int:
    # BA(n, m) has m*(n-m) edges; recorded without keeping the graph
    # alive across the children.
    return args.attach * (args.vertices - args.attach)


def _record_history(args, out) -> None:
    from repro.bench.history import BenchHistory, BenchRun

    env = out["env"]
    meta = {"hostname": env["hostname"], "kernel_tier": env["kernel_tier"]}
    history = BenchHistory(args.history)
    history.append(
        BenchRun(
            bench_id="sief_scale_build",
            run=args.run,
            samples=(out["build"]["seconds"],),
            meta=meta,
            extra={"cases": out["build"]["cases"]},
            timestamp=time.time(),
        )
    )
    history.append(
        BenchRun(
            bench_id="sief_scale_serve",
            run=args.run,
            samples=tuple(out["serve"]["paged"]["seconds_per_rep"]),
            meta=meta,
            extra={"lru": out["serve"]["paged"]["lru"]},
            timestamp=time.time(),
        )
    )
    print(
        f"recorded sief_scale_build/sief_scale_serve as run "
        f"{args.run!r} in {args.history}",
        flush=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=1_000_000)
    parser.add_argument("--attach", type=int, default=2)
    parser.add_argument(
        "--cases", type=int, default=64, help="failure cases to build"
    )
    parser.add_argument(
        "--shard-size", type=int, default=16,
        help="cases per build shard (bounds builder memory)",
    )
    parser.add_argument(
        "--cache-cases", type=int, default=8,
        help="LRU capacity of the paged serving child",
    )
    parser.add_argument(
        "--pairs", type=int, default=256, help="query pairs per case"
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="workload repetitions in the paged child (timing samples)",
    )
    parser.add_argument(
        "--memory-budget-mb", type=int, default=512,
        help="peak-RSS budget for the paged serving child",
    )
    parser.add_argument(
        "--assert-ratio", type=float, default=None,
        help="exit nonzero unless resident RSS exceeds paged RSS by "
        "this factor (meaningless below ~1M vertices, where the "
        "interpreter dominates both)",
    )
    parser.add_argument("--store", dest="store_path", default=None)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--history", type=Path, default=None,
        help="append sief_scale_* BenchRun records to this JSONL history",
    )
    parser.add_argument(
        "--run", default="scale", help="run label for --history records"
    )
    parser.add_argument(
        "--child", choices=sorted(_CHILDREN), default=None,
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        result = _CHILDREN[args.child](args)
        print(json.dumps(result))
        return 0

    if args.store_path is None:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="sief-scale-")
        args.store_path = os.path.join(tmp.name, "store")
    out = run(args)
    return 0 if out["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
