"""Figure 5 — supplemental (SLEN) vs original (OLEN) label entry counts.

Paper reference: Wiki-Vote's SLEN/OLEN ratio is by far the largest
(~80×), Facebook's second (~40×), all others under 10×.  Our calibrated
analogues preserve the top-2 ordering and CaG as the most compact; the
bars are rendered per dataset with both series.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import DATASET_ORDER, DATASETS
from repro.bench.reporting import render_grouped_bars, render_table
from repro.core.affected import identify_affected
from repro.core.bfs_all import build_supplemental_bfs_all


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_single_supplemental_build(benchmark, context, name):
    """Measured operation: IDENTIFY + BFS ALL relabel for one case."""
    ctx = context(name)
    graph, labeling = ctx.graph, ctx.labeling
    edge = next(iter(graph.edges()))

    def build_one():
        affected = identify_affected(graph, *edge)
        return build_supplemental_bfs_all(graph, labeling, affected)

    si = benchmark(build_one)
    assert si.affected.total >= 2


def test_print_figure5(benchmark, context, emit):
    groups = []
    values = []
    rows = []
    for name in DATASET_ORDER:
        ctx = context(name)
        olen = ctx.labeling.total_entries()
        slen = ctx.index.total_supplemental_entries()
        spec = DATASETS[name]
        groups.append(spec.short)
        values.append([float(olen), float(slen)])
        rows.append([name, olen, slen, slen / olen])
    chart = render_grouped_bars(
        "Figure 5: supplemental vs original label entry numbers",
        groups,
        ["OLEN", "SLEN"],
        values,
        log_scale=True,
    )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Figure 5 (data): label entry totals",
            ["dataset", "OLEN", "SLEN", "SLEN/OLEN"],
            rows,
        ),
        kwargs={
            "note": "paper ratios: Wik ~80, Fac ~40, others < 10; "
            "top-2 ordering is the reproduction target"
        },
        rounds=1,
        iterations=1,
    )
    emit("fig5_label_entries", chart + "\n\n" + table)

    ratios = {row[0]: row[3] for row in rows}
    ordered = sorted(ratios, key=ratios.get, reverse=True)
    assert ordered[0] == "wiki_vote"
    assert ordered[1] == "facebook"
    assert ratios["ca_grqc"] == min(ratios.values())
