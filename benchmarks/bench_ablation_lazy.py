"""Ablation — lazy vs offline SIEF, and incremental vs rebuild labeling.

Two deployment questions the paper's offline design leaves open:

1. If only a fraction of edges ever fail, how much build work does the
   lazy index (:class:`repro.core.lazy.LazySIEFIndex`) save versus the
   full offline build?
2. When the graph *grows*, how does the dynamic-PLL repair
   (:mod:`repro.labeling.dynamic`) compare to rebuilding the labeling
   from scratch?
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.reporting import render_table
from repro.core.lazy import LazySIEFIndex
from repro.labeling.dynamic import insert_edge
from repro.labeling.pll import build_pll

DATASETS_USED = ["ca_grqc", "oregon"]
FAILING_FRACTION = 0.05
INSERTIONS = 25


@pytest.mark.parametrize("name", DATASETS_USED)
def test_lazy_first_queries(benchmark, context, name):
    """Measured operation: 10 first-touch failure queries on a cold index."""
    ctx = context(name)
    edges = random.Random(9).sample(list(ctx.graph.edges()), 10)

    def run():
        lazy = LazySIEFIndex(ctx.graph.copy(), ctx.labeling)
        for u, v in edges:
            lazy.distance(0, 1, (u, v))

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_print_lazy_ablation(benchmark, context, emit):
    rows = []
    for name in DATASETS_USED:
        ctx = context(name)
        graph = ctx.graph
        m = graph.num_edges
        failing = random.Random(10).sample(
            list(graph.edges()), max(1, int(m * FAILING_FRACTION))
        )

        # Lazy: touch only the failing edges.
        lazy = LazySIEFIndex(graph.copy(), ctx.labeling)
        started = time.perf_counter()
        for u, v in failing:
            lazy.distance(0, 1, (u, v))
        lazy_seconds = time.perf_counter() - started

        # Offline: the cached full build's cost.
        full_seconds = (
            ctx.report.identify_seconds + ctx.report.relabel_seconds
        )

        rows.append(
            [
                name,
                len(failing),
                m,
                lazy_seconds,
                full_seconds,
                full_seconds / lazy_seconds if lazy_seconds else 0.0,
            ]
        )
    table = render_table(
        "Ablation A: lazy vs offline SIEF "
        f"({FAILING_FRACTION:.0%} of edges ever fail)",
        [
            "dataset",
            "cases built",
            "all cases",
            "lazy (s)",
            "offline (s)",
            "saving",
        ],
        rows,
    )

    # Incremental insertion vs rebuild.
    rows2 = []
    for name in DATASETS_USED:
        graph = context(name).graph.copy()
        labeling = build_pll(graph)
        rng = random.Random(11)
        n = graph.num_vertices
        new_edges = []
        while len(new_edges) < INSERTIONS:
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b and not graph.has_edge(a, b):
                new_edges.append((a, b))
                graph.add_edge(a, b)  # reserve; removed again below
        for a, b in new_edges:
            graph.remove_edge(a, b)

        started = time.perf_counter()
        for a, b in new_edges:
            insert_edge(graph, labeling, a, b)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        rebuilt = build_pll(graph)
        one_rebuild_seconds = time.perf_counter() - started

        rows2.append(
            [
                name,
                INSERTIONS,
                incremental_seconds / INSERTIONS * 1e3,
                one_rebuild_seconds * 1e3,
                one_rebuild_seconds
                / (incremental_seconds / INSERTIONS),
            ]
        )
    table2 = benchmark.pedantic(
        render_table,
        args=(
            "Ablation B: incremental insertion vs PLL rebuild",
            [
                "dataset",
                "insertions",
                "per-insert repair (ms)",
                "one full rebuild (ms)",
                "repairs per rebuild",
            ],
            rows2,
        ),
        rounds=1,
        iterations=1,
    )
    emit("ablation_lazy_dynamic", table + "\n\n" + table2)

    for row in rows:
        assert row[5] > 2.0, f"{row[0]}: lazy saved too little"
    for row in rows2:
        assert row[4] > 1.0, f"{row[0]}: repair slower than full rebuild"
