"""Ablation — future-work failure models (dual-edge, node) on SIEF.

The paper defers dual-edge and node failures to future work (§6).  This
bench quantifies how far the single-failure index already carries:

* the fraction of dual-failure / node-failure queries whose answer the
  index determines outright (disconnection certificates + tight lower
  bounds), and
* the latency of the oracle versus a from-scratch avoid-set BFS.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import render_table
from repro.bench.workloads import dual_failure_workload, node_failure_workload
from repro.failures.dual import DualFailureOracle
from repro.failures.node import NodeFailureOracle
from repro.failures.search import bfs_distance_avoiding

DATASETS_USED = ["ca_grqc", "gnutella"]
QUERIES = 300


@pytest.mark.parametrize("name", DATASETS_USED)
def test_dual_failure_oracle(benchmark, context, name):
    """Measured operation: 50 dual-failure queries through the oracle."""
    ctx = context(name)
    oracle = DualFailureOracle(ctx.graph, ctx.index)
    workload = dual_failure_workload(ctx.graph, 50)

    def run():
        for s, t, e1, e2 in workload:
            oracle.distance(s, t, e1, e2)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_print_failure_ablation(benchmark, context, emit):
    rows = []
    for name in DATASETS_USED:
        ctx = context(name)
        graph, index = ctx.graph, ctx.index

        dual = DualFailureOracle(graph, index)
        dual_workload = dual_failure_workload(graph, QUERIES)
        started = time.perf_counter()
        for s, t, e1, e2 in dual_workload:
            dual.distance(s, t, e1, e2)
        dual_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for s, t, e1, e2 in dual_workload:
            bfs_distance_avoiding(graph, s, t, avoid_edges=(e1, e2))
        dual_bfs_seconds = time.perf_counter() - started

        node = NodeFailureOracle(graph, index)
        node_workload = node_failure_workload(graph, QUERIES)
        for s, t, w in node_workload:
            node.distance(s, t, w)

        rows.append(
            [
                name,
                "dual-edge",
                dual.tightness_rate,
                dual_seconds / QUERIES * 1e6,
                dual_bfs_seconds / QUERIES * 1e6,
            ]
        )
        rows.append(
            [name, "node", node.tightness_rate, None, None]
        )
    table = benchmark.pedantic(
        render_table,
        args=(
            "Ablation: future-work failure models over the single-failure "
            "index",
            [
                "dataset",
                "model",
                "index-tight rate",
                "oracle (us/query)",
                "plain BFS (us/query)",
            ],
            rows,
        ),
        kwargs={
            "note": "tight rate = queries whose exact answer the single-"
            "failure SIEF index certified (disconnect or tight bound)"
        },
        rounds=1,
        iterations=1,
    )
    emit("ablation_failures", table)

    for row in rows:
        assert 0.0 <= row[2] <= 1.0
